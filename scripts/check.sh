#!/bin/sh
# Tier-1 verification entry point: build, run the full test suite, and
# guard the repository hygiene invariants.
#
#   ./scripts/check.sh
#
# Fails if:
#   - the build or any test fails,
#   - build artifacts under _build/ (or *.install files) are ever tracked
#     by git again (they were purged in the tuning-engine PR and are
#     covered by .gitignore),
#   - observability run artifacts (BENCH_obs.json, BENCH_plan_exec.json,
#     BENCH_model_acc.json, *.trace.json, *.folded flamegraph stacks) are
#     tracked: they are per-run outputs, not sources,
#   - tuning run artifacts (checkpoints, quarantined databases, tuning.db)
#     are tracked,
#   - compiled-backend temp artifacts (mdh_cc_* sources/binaries, *.bin,
#     *.o, a.out) are tracked: they belong in $TMPDIR, never in git,
#   - the chaos stage fails: tuning under fault injection must degrade
#     gracefully (same schedule, exit 0) and a deadline-suspended tune
#     must resume bit-identically,
#   - the plan-consistency stage fails: every Plan consumer must go through
#     the Plan IR (no Schedule internals in the executor / cost model /
#     simulator / kernel codegen / plan specializer) and the catalogue's
#     default-schedule plan digests must match scripts/plan_digests.golden,
#   - the differential stage fails: the plan-compiled specializer and (when
#     gcc is on PATH) the compiled OpenMP C must reproduce the reference
#     interpreter's results; without gcc the C half prints an explicit SKIP
#     line — it is never silently skipped.
set -eu

cd "$(dirname "$0")/.."

tracked_artifacts=$(git ls-files -- '_build' '*.install' || true)
if [ -n "$tracked_artifacts" ]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "$tracked_artifacts" | head -10 >&2
    echo "(run: git rm -r --cached _build '*.install')" >&2
    exit 1
fi

tracked_obs=$(git ls-files -- 'BENCH_obs.json' '**/BENCH_obs.json' '*.trace.json' \
    'BENCH_plan_exec.json' '**/BENCH_plan_exec.json' \
    'BENCH_model_acc.json' '**/BENCH_model_acc.json' '*.folded' \
    'BENCH_serve.json' '**/BENCH_serve.json' '*.sock' || true)
if [ -n "$tracked_obs" ]; then
    echo "error: observability artifacts are tracked by git:" >&2
    echo "$tracked_obs" | head -10 >&2
    echo "(run: git rm --cached <file>; they are covered by .gitignore)" >&2
    exit 1
fi

tracked_tuning=$(git ls-files -- '*.ckpt' '*.corrupt' 'tuning.db' '**/tuning.db' || true)
if [ -n "$tracked_tuning" ]; then
    echo "error: tuning run artifacts (checkpoints/quarantines/dbs) are tracked by git:" >&2
    echo "$tracked_tuning" | head -10 >&2
    echo "(run: git rm --cached <file>; they are covered by .gitignore)" >&2
    exit 1
fi

tracked_cc=$(git ls-files -- 'mdh_cc_*' '**/mdh_cc_*' '*.bin' '*.o' 'a.out' '**/a.out' || true)
if [ -n "$tracked_cc" ]; then
    echo "error: compiled-backend temp artifacts are tracked by git:" >&2
    echo "$tracked_cc" | head -10 >&2
    echo "(the cc backend writes to \$TMPDIR and cleans up; run: git rm --cached <file>)" >&2
    exit 1
fi

dune build
dune runtest

# static analysis gate: the catalogue and the example pragmas must stay free
# of error- and warning-severity diagnostics (hints are allowed)
dune exec bin/mdhc.exe -- check --strict > /dev/null
dune exec bin/mdhc.exe -- check --strict --file examples/matvec.mdh \
    -P I=16 -P K=16 > /dev/null
dune exec bin/mdhc.exe -- check --strict --file examples/mbbs.mdh \
    -P I=16 -P J=16 > /dev/null
dune exec bin/mdhc.exe -- check --strict --file examples/mcc.mdh \
    -P N=1 -P P=112 -P Q=112 -P K=64 -P R=7 -P S=7 -P C=3 > /dev/null

# docs drift guard: the code index in docs/DIAGNOSTICS.md is generated from
# Diagnostic.code_table (regenerate with: dune exec scripts/gen_diagnostics.exe)
dune exec scripts/gen_diagnostics.exe -- --check

# plan-consistency stage, part 1: Plan.t is the single executable IR.
# The four consumers must not reach back into Schedule internals — a
# match on Schedule fields in any of them means the refactor regressed.
plan_consumers="lib/runtime/exec.ml lib/runtime/specializer.ml lib/lowering/cost.ml lib/lowering/simulate.ml lib/codegen/kernel.ml"
schedule_leaks=$(grep -nE \
    'Schedule\.(clamp|legal|tile_sizes|parallel_dims|used_layers|innermost_parallel_dim|parallel_iterations)' \
    $plan_consumers || true)
if [ -n "$schedule_leaks" ]; then
    echo "error: Plan consumers reach into Schedule internals:" >&2
    echo "$schedule_leaks" | head -10 >&2
    echo "(consume Plan.t — built via Plan_cache.build — instead)" >&2
    exit 1
fi

chaos_dir=$(mktemp -d)
trap 'rm -rf "$chaos_dir"' EXIT

# plan-consistency stage, part 2: `mdhc plan` must succeed over the whole
# catalogue and the structural digests must match the committed golden file
# (regenerate deliberately with: dune exec bin/mdhc.exe -- plan --digest)
dune exec bin/mdhc.exe -- plan --digest > "$chaos_dir/plan_digests.txt"
diff -u scripts/plan_digests.golden "$chaos_dir/plan_digests.txt" || {
    echo "error: plan digests diverge from scripts/plan_digests.golden" >&2
    echo "(an intentional plan/schedule change must update the golden file)" >&2
    exit 1; }

# differential stage: execute what we generate. The specializer backend
# must reproduce the reference interpreter on representative workloads
# (reduction, scan, stencil, high-rank contraction); with gcc the same
# set round-trips through the generated OpenMP C. `mdhc run` exits
# non-zero on any oracle mismatch, so success is the assertion.
for wl in matmul mbbs jacobi1d 'ccsd(t)'; do
    dune exec bin/mdhc.exe -- run "$wl" --backend special > /dev/null || {
        echo "error: specializer differential failed on $wl" >&2; exit 1; }
done
if command -v gcc > /dev/null 2>&1; then
    for wl in matmul mbbs jacobi1d 'ccsd(t)'; do
        dune exec bin/mdhc.exe -- run "$wl" --backend cc > /dev/null || {
            echo "error: compiled-C differential failed on $wl" >&2; exit 1; }
    done
else
    echo "check.sh: SKIP compiled-C differential stage (gcc not on PATH)"
fi

# profiler stage: `mdhc profile` must render a per-plan-level breakdown on
# both backends and honour its JSON/flame contracts (bit-identity of
# unprofiled runs and the 5% sum bound are pinned by the test suite)
dune exec bin/mdhc.exe -- profile matmul > /dev/null || {
    echo "error: mdhc profile matmul (specializer) failed" >&2; exit 1; }
dune exec bin/mdhc.exe -- profile prl --backend interp \
    --flame "$chaos_dir/prl.folded" > /dev/null 2> /dev/null || {
    echo "error: mdhc profile prl (walker) failed" >&2; exit 1; }
test -s "$chaos_dir/prl.folded" || {
    echo "error: mdhc profile wrote no flamegraph stacks" >&2; exit 1; }

# chaos stage: tuning under deterministic fault injection on each site
# must degrade gracefully — exit 0 and the fault-free schedule

dune exec bin/mdhc.exe -- tune matvec --no-cache --budget 40 \
    --strategy random > "$chaos_dir/plain.txt" 2> /dev/null
grep -v 'wall)\|^cost model:' "$chaos_dir/plain.txt" > "$chaos_dir/plain.cmp"
for spec in 'cost.eval:raise@10' 'pool.job:raise@1' 'db.read:raise@1'; do
    MDH_FAULTS="$spec" dune exec bin/mdhc.exe -- tune matvec --no-cache \
        --budget 40 --strategy random --parallel \
        > "$chaos_dir/chaos.txt" 2> /dev/null || {
        echo "error: tune under MDH_FAULTS=$spec failed" >&2; exit 1; }
    grep -v 'wall)\|^cost model:' "$chaos_dir/chaos.txt" > "$chaos_dir/chaos.cmp"
    diff -u "$chaos_dir/plain.cmp" "$chaos_dir/chaos.cmp" > /dev/null || {
        echo "error: MDH_FAULTS=$spec changed the tuned schedule" >&2; exit 1; }
done

# crash/resume stage: a deadline-suspended anneal (exit 3) resumed to
# completion must be bit-identical to the uninterrupted run
dune exec bin/mdhc.exe -- tune matvec --strategy anneal --budget 60 --seed 9 \
    --tuning-db "$chaos_dir/ref.db" > "$chaos_dir/ref.txt" 2> /dev/null
rc=0
dune exec bin/mdhc.exe -- tune matvec --strategy anneal --budget 60 --seed 9 \
    --tuning-db "$chaos_dir/resume.db" --checkpoint "$chaos_dir/tune.ckpt" \
    --deadline 0.0000001 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "error: deadline suspension exited $rc, expected 3" >&2; exit 1
fi
dune exec bin/mdhc.exe -- tune matvec --strategy anneal --budget 60 --seed 9 \
    --tuning-db "$chaos_dir/resume.db" --checkpoint "$chaos_dir/tune.ckpt" \
    --resume > "$chaos_dir/resumed.txt" 2> /dev/null
grep -v 'wall)\|^cost model:' "$chaos_dir/ref.txt" > "$chaos_dir/ref.cmp"
grep -v 'wall)\|^cost model:' "$chaos_dir/resumed.txt" > "$chaos_dir/resumed.cmp"
diff -u "$chaos_dir/ref.cmp" "$chaos_dir/resumed.cmp" > /dev/null || {
    echo "error: resumed tune differs from the uninterrupted run" >&2; exit 1; }

# serve stage: the mdhd daemon must keep serving under injected
# transport faults, drain gracefully on SIGTERM (suspending an in-flight
# tune to a checkpoint), resume that tune bit-identically after a
# restart, and leak neither socket nor checkpoint files.

MDHD=./_build/default/bin/mdhd.exe
MDHC_BIN=./_build/default/bin/mdhc.exe
serve_sock="$chaos_dir/mdhd.sock"
serve_state="$chaos_dir/mdhd-state"

wait_for_daemon() { # pid
    i=0
    while [ ! -S "$serve_sock" ]; do
        i=$((i + 1))
        [ "$i" -le 100 ] || { echo "error: mdhd never bound $serve_sock" >&2; exit 1; }
        kill -0 "$1" 2> /dev/null || { echo "error: mdhd died during startup" >&2; exit 1; }
        sleep 0.1
    done
}

# part 1: chaos — every 3rd connection's read raises in the daemon; the
# transport error is absorbed (one failed client, a served successor)
# and after a burst of concurrent clients the daemon still answers.
MDH_FAULTS='serve.read:raise@3' "$MDHD" --socket "$serve_sock" \
    --state-dir "$serve_state" --tuning-db "$chaos_dir/serve.db" \
    > "$chaos_dir/mdhd1.log" 2>&1 &
mdhd_pid=$!
wait_for_daemon "$mdhd_pid"
client_pids=
for i in 1 2 3 4 5 6; do
    "$MDHC_BIN" plan matvec --device cpu --remote "$serve_sock" \
        > "$chaos_dir/serve_plan.$i" 2>&1 &
    client_pids="$client_pids $!"
done
for pid in $client_pids; do wait "$pid" || true; done
served=$(grep -l 'digest' "$chaos_dir"/serve_plan.* | wc -l)
[ "$served" -ge 4 ] || {
    echo "error: only $served/6 clients served under serve.read chaos" >&2; exit 1; }
"$MDHC_BIN" plan matvec --device cpu --remote "$serve_sock" > /dev/null || {
    echo "error: mdhd stopped serving after injected read faults" >&2; exit 1; }
kill -TERM "$mdhd_pid"
wait "$mdhd_pid" || {
    echo "error: mdhd (chaos) did not exit 0 on SIGTERM" >&2; exit 1; }
[ ! -e "$serve_sock" ] || {
    echo "error: mdhd (chaos) leaked its socket file" >&2; exit 1; }

# part 2: SIGTERM mid-tune. Slow the daemon's cost model with injected
# delays (500 ms every 5th evaluation — delays never change schedules),
# land SIGTERM while a remote anneal is in flight: the client must see a suspension (exit 3), the
# daemon must drain to exit 0, and a restarted daemon must resume the
# checkpoint to a result bit-identical to an uninterrupted local tune.
"$MDHC_BIN" tune matvec --strategy anneal --budget 2000 --seed 9 \
    --no-cache > "$chaos_dir/serve_ref.txt" 2> /dev/null
MDH_FAULTS='cost.eval:delay=500/5' "$MDHD" --socket "$serve_sock" \
    --state-dir "$serve_state" --tuning-db "$chaos_dir/serve.db" \
    > "$chaos_dir/mdhd2.log" 2>&1 &
mdhd_pid=$!
wait_for_daemon "$mdhd_pid"
rc_file="$chaos_dir/tune_rc"
( rc=0
  "$MDHC_BIN" tune matvec --strategy anneal --budget 2000 --seed 9 \
    --no-cache --remote "$serve_sock" > /dev/null 2> "$chaos_dir/suspend.err" ||
    rc=$?
  echo "$rc" > "$rc_file" ) &
client_pid=$!
sleep 1
kill -TERM "$mdhd_pid"
wait "$mdhd_pid" || {
    echo "error: mdhd did not drain to exit 0 on SIGTERM mid-tune" >&2; exit 1; }
wait "$client_pid" || true
rc=$(cat "$rc_file")
if [ "$rc" -ne 3 ]; then
    echo "error: remote tune under SIGTERM exited $rc, expected 3 (suspended)" >&2
    cat "$chaos_dir/suspend.err" >&2
    exit 1
fi
[ ! -e "$serve_sock" ] || {
    echo "error: mdhd leaked its socket file after drain" >&2; exit 1; }
ls "$serve_state"/*.ckpt > /dev/null 2>&1 || {
    echo "error: suspended tune left no checkpoint in $serve_state" >&2; exit 1; }

"$MDHD" --socket "$serve_sock" --state-dir "$serve_state" \
    --tuning-db "$chaos_dir/serve.db" > "$chaos_dir/mdhd3.log" 2>&1 &
mdhd_pid=$!
wait_for_daemon "$mdhd_pid"
"$MDHC_BIN" tune matvec --strategy anneal --budget 2000 --seed 9 \
    --no-cache --remote "$serve_sock" --resume \
    > "$chaos_dir/serve_resumed.txt" 2> /dev/null || {
    echo "error: remote --resume after daemon restart failed" >&2; exit 1; }
grep '^best schedule:\|^estimated time:' "$chaos_dir/serve_ref.txt" \
    > "$chaos_dir/serve_ref.cmp"
grep '^best schedule:\|^estimated time:' "$chaos_dir/serve_resumed.txt" \
    > "$chaos_dir/serve_resumed.cmp"
diff -u "$chaos_dir/serve_ref.cmp" "$chaos_dir/serve_resumed.cmp" || {
    echo "error: resumed remote tune differs from the uninterrupted local run" >&2
    exit 1; }
if ls "$serve_state"/*.ckpt > /dev/null 2>&1; then
    echo "error: completed remote tune leaked checkpoint files:" >&2
    ls "$serve_state" >&2
    exit 1
fi
kill -TERM "$mdhd_pid"
wait "$mdhd_pid" || {
    echo "error: mdhd (resume) did not exit 0 on SIGTERM" >&2; exit 1; }
[ ! -e "$serve_sock" ] || {
    echo "error: mdhd (resume) leaked its socket file" >&2; exit 1; }

echo "check.sh: OK"
