#!/bin/sh
# Tier-1 verification entry point: build, run the full test suite, and
# guard the repository hygiene invariants.
#
#   ./scripts/check.sh
#
# Fails if:
#   - the build or any test fails,
#   - build artifacts under _build/ (or *.install files) are ever tracked
#     by git again (they were purged in the tuning-engine PR and are
#     covered by .gitignore),
#   - observability run artifacts (BENCH_obs.json, *.trace.json) are
#     tracked: they are per-run outputs, not sources.
set -eu

cd "$(dirname "$0")/.."

tracked_artifacts=$(git ls-files -- '_build' '*.install' || true)
if [ -n "$tracked_artifacts" ]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "$tracked_artifacts" | head -10 >&2
    echo "(run: git rm -r --cached _build '*.install')" >&2
    exit 1
fi

tracked_obs=$(git ls-files -- 'BENCH_obs.json' '**/BENCH_obs.json' '*.trace.json' || true)
if [ -n "$tracked_obs" ]; then
    echo "error: observability artifacts are tracked by git:" >&2
    echo "$tracked_obs" | head -10 >&2
    echo "(run: git rm --cached <file>; they are covered by .gitignore)" >&2
    exit 1
fi

dune build
dune runtest

# static analysis gate: the catalogue and the example pragmas must stay free
# of error- and warning-severity diagnostics (hints are allowed)
dune exec bin/mdhc.exe -- check --strict > /dev/null
dune exec bin/mdhc.exe -- check --strict --file examples/matvec.mdh \
    -P I=16 -P K=16 > /dev/null
dune exec bin/mdhc.exe -- check --strict --file examples/mbbs.mdh \
    -P I=16 -P J=16 > /dev/null
dune exec bin/mdhc.exe -- check --strict --file examples/mcc.mdh \
    -P N=1 -P P=112 -P Q=112 -P K=64 -P R=7 -P S=7 -P C=3 > /dev/null

echo "check.sh: OK"
