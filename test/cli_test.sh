#!/bin/sh
# CLI contract tests for mdhc: --version, non-zero exit codes on bad
# input, observability flags, and schedule bit-identity under --trace.
# Usage: cli_test.sh path/to/mdhc.exe
set -eu

MDHC=$1
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# --version exits 0 and prints a dotted version number
"$MDHC" --version >"$tmp/version.txt" 2>&1 || fail "--version exited non-zero"
grep -Eq '^[0-9]+\.[0-9]+' "$tmp/version.txt" || fail "--version printed no version"

# bad invocations must exit non-zero (and not crash)
if "$MDHC" frobnicate >/dev/null 2>&1; then
  fail "unknown subcommand exited 0"
fi
if "$MDHC" tune no-such-workload --no-cache >/dev/null 2>&1; then
  fail "unknown workload exited 0"
fi
if "$MDHC" tune matmul --no-cache --device quantum >/dev/null 2>&1; then
  fail "unknown device exited 0"
fi
if "$MDHC" tune matmul --no-cache --input 99 >/dev/null 2>&1; then
  fail "unknown input set exited 0"
fi
if "$MDHC" tune >/dev/null 2>&1; then
  fail "missing positional workload exited 0"
fi

# tune with observability on: exit 0, metrics summary on stdout, trace
# file is Chrome trace_event JSON
"$MDHC" tune matmul --no-cache --budget 40 \
  --trace "$tmp/trace.json" --metrics >"$tmp/traced.txt" 2>"$tmp/traced.err" ||
  fail "tune --trace --metrics exited non-zero"
grep -q '"traceEvents"' "$tmp/trace.json" || fail "trace file has no traceEvents"
grep -q '"ph"' "$tmp/trace.json" || fail "trace file has no events"
grep -q '\[metrics\]' "$tmp/traced.txt" || fail "no [metrics] summary on stdout"
grep -q 'trace written to' "$tmp/traced.err" || fail "no trace notice on stderr"

# bit-identity: the tuned schedule (and every other deterministic line)
# is unchanged by tracing; only wall-clock timings may differ
"$MDHC" tune matmul --no-cache --budget 40 >"$tmp/plain.txt" 2>/dev/null ||
  fail "plain tune exited non-zero"
grep -v 'wall)' "$tmp/plain.txt" >"$tmp/plain.cmp"
# strip the observability summaries the traced run appends, then compare
sed -n '/^\[metrics\]$/q;p' "$tmp/traced.txt" | grep -v 'wall)' >"$tmp/traced.cmp"
diff -u "$tmp/plain.cmp" "$tmp/traced.cmp" >&2 ||
  fail "tracing changed deterministic output"
grep -q '^best schedule:' "$tmp/plain.cmp" || fail "no schedule line to compare"

# run with --metrics also works end to end
"$MDHC" run dot --metrics >"$tmp/run.txt" 2>&1 || fail "run --metrics exited non-zero"
grep -q 'result check: OK' "$tmp/run.txt" || fail "run result check failed"

# --- mdhc check: the static diagnostics engine ---

# this PR's version
grep -q '^1\.2\.0' "$tmp/version.txt" || fail "--version is not 1.2.0"

# a clean catalogue workload checks out with exit 0
"$MDHC" check matmul >"$tmp/check_ok.txt" 2>&1 || fail "check matmul exited non-zero"
grep -q 'checked 1 target' "$tmp/check_ok.txt" || fail "check printed no summary"

# a broken pragma yields exit 1 and at least two distinct diagnostic codes,
# each anchored to a source position, in a single invocation
if "$MDHC" check --file fixtures/broken.mdh >"$tmp/check_bad.txt" 2>&1; then
  fail "check on broken.mdh exited 0"
fi
codes=$(grep -oE 'MDH[0-9]+' "$tmp/check_bad.txt" | sort -u | wc -l)
[ "$codes" -ge 2 ] || fail "check on broken.mdh reported fewer than 2 distinct codes"
grep -Eq ':[0-9]+:[0-9]+: error\[MDH' "$tmp/check_bad.txt" ||
  fail "check diagnostics carry no source positions"

# warnings gate the exit code only under --strict; hints never do
"$MDHC" check --file fixtures/warn.mdh >"$tmp/check_warn.txt" 2>&1 ||
  fail "warning-only check exited non-zero without --strict"
grep -q 'warning\[MDH101\]' "$tmp/check_warn.txt" || fail "unused-input warning missing"
if "$MDHC" check --strict --file fixtures/warn.mdh >/dev/null 2>&1; then
  fail "check --strict ignored a warning"
fi

# --json emits SARIF with rule identifiers
"$MDHC" check --json --file fixtures/broken.mdh >"$tmp/check.sarif" 2>&1 || true
grep -q '"ruleId"' "$tmp/check.sarif" || fail "check --json emitted no ruleId"
grep -q '"version":"2.1.0"' "$tmp/check.sarif" || fail "check --json is not SARIF 2.1.0"

echo "cli_test: all checks passed"
