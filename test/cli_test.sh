#!/bin/sh
# CLI contract tests for mdhc: --version, non-zero exit codes on bad
# input, observability flags, and schedule bit-identity under --trace.
# Usage: cli_test.sh path/to/mdhc.exe
set -eu

MDHC=$1
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# --version exits 0 and prints a dotted version number
"$MDHC" --version >"$tmp/version.txt" 2>&1 || fail "--version exited non-zero"
grep -Eq '^[0-9]+\.[0-9]+' "$tmp/version.txt" || fail "--version printed no version"

# bad invocations must exit non-zero (and not crash)
if "$MDHC" frobnicate >/dev/null 2>&1; then
  fail "unknown subcommand exited 0"
fi
if "$MDHC" tune no-such-workload --no-cache >/dev/null 2>&1; then
  fail "unknown workload exited 0"
fi
if "$MDHC" tune matmul --no-cache --device quantum >/dev/null 2>&1; then
  fail "unknown device exited 0"
fi
if "$MDHC" tune matmul --no-cache --input 99 >/dev/null 2>&1; then
  fail "unknown input set exited 0"
fi
if "$MDHC" tune >/dev/null 2>&1; then
  fail "missing positional workload exited 0"
fi

# tune with observability on: exit 0, metrics summary on stdout, trace
# file is Chrome trace_event JSON
"$MDHC" tune matmul --no-cache --budget 40 \
  --trace "$tmp/trace.json" --metrics >"$tmp/traced.txt" 2>"$tmp/traced.err" ||
  fail "tune --trace --metrics exited non-zero"
grep -q '"traceEvents"' "$tmp/trace.json" || fail "trace file has no traceEvents"
grep -q '"ph"' "$tmp/trace.json" || fail "trace file has no events"
grep -q '\[metrics\]' "$tmp/traced.txt" || fail "no [metrics] summary on stdout"
grep -q 'trace written to' "$tmp/traced.err" || fail "no trace notice on stderr"

# bit-identity: the tuned schedule (and every other deterministic line)
# is unchanged by tracing; only wall-clock timings may differ
"$MDHC" tune matmul --no-cache --budget 40 >"$tmp/plain.txt" 2>/dev/null ||
  fail "plain tune exited non-zero"
grep -v 'wall)' "$tmp/plain.txt" >"$tmp/plain.cmp"
# strip the observability summaries the traced run appends, then compare
sed -n '/^\[metrics\]$/q;p' "$tmp/traced.txt" | grep -v 'wall)' >"$tmp/traced.cmp"
diff -u "$tmp/plain.cmp" "$tmp/traced.cmp" >&2 ||
  fail "tracing changed deterministic output"
grep -q '^best schedule:' "$tmp/plain.cmp" || fail "no schedule line to compare"

# run with --metrics also works end to end
"$MDHC" run dot --metrics >"$tmp/run.txt" 2>&1 || fail "run --metrics exited non-zero"
grep -q 'result check: OK' "$tmp/run.txt" || fail "run result check failed"

# --- run backends: specializer and compiled C ---

# the plan-compiled specializer executes and reports its cache traffic
"$MDHC" run matmul --backend special --metrics >"$tmp/run_special.txt" 2>&1 ||
  fail "run --backend special exited non-zero"
grep -q 'result check: OK' "$tmp/run_special.txt" ||
  fail "specializer result check failed"
grep -q 'runtime\.specializer\.' "$tmp/run_special.txt" ||
  fail "no specializer counters under --metrics"

# the auto backend honours --no-specialize, and interp always bypasses
"$MDHC" run matmul --parallel --no-specialize >"$tmp/run_nospec.txt" 2>&1 ||
  fail "run --no-specialize exited non-zero"
grep -q 'result check: OK' "$tmp/run_nospec.txt" || fail "--no-specialize check failed"
"$MDHC" run matmul --backend interp >"$tmp/run_interp.txt" 2>&1 ||
  fail "run --backend interp exited non-zero"
grep -q 'result check: OK' "$tmp/run_interp.txt" || fail "interp check failed"

# a record-typed workload is not specializable: a clean error, not a crash
if "$MDHC" run prl --backend special >/dev/null 2>&1; then
  fail "run prl --backend special exited 0"
fi

# compiled OpenMP C, when a C compiler is present (skip, never silently)
if command -v gcc >/dev/null 2>&1; then
  "$MDHC" run matmul --backend cc >"$tmp/run_cc.txt" 2>&1 ||
    fail "run --backend cc exited non-zero"
  grep -q 'result check: OK' "$tmp/run_cc.txt" || fail "compiled-C check failed"
else
  echo "cli_test: SKIP compiled-C backend check (gcc not on PATH)"
fi

# --- mdhc check: the static diagnostics engine ---

# this PR's version
grep -q '^1\.5\.0' "$tmp/version.txt" || fail "--version is not 1.5.0"

# --- mdhc plan: the executable IR, printed and fingerprinted ---

# a single workload/device plan names its distribute level and a digest
"$MDHC" plan matvec --device cpu >"$tmp/plan.txt" 2>&1 ||
  fail "plan matvec exited non-zero"
grep -q 'distribute dims' "$tmp/plan.txt" || fail "plan printed no distribute level"
grep -Eq 'digest [0-9a-f]{8}' "$tmp/plan.txt" || fail "plan printed no digest"

# --digest emits one `workload device digest` line per catalogue entry x device
"$MDHC" plan --digest >"$tmp/digests.txt" 2>&1 || fail "plan --digest exited non-zero"
grep -Eq '^matvec +cpu +[0-9a-f]{8}$' "$tmp/digests.txt" ||
  fail "plan --digest has no matvec cpu line"
n_lines=$(wc -l <"$tmp/digests.txt")
n_workloads=$("$MDHC" list | wc -l)
[ "$n_lines" -eq $((2 * n_workloads)) ] ||
  fail "plan --digest line count is not 2 x catalogue size"

# digests are deterministic across invocations
"$MDHC" plan --digest >"$tmp/digests2.txt" 2>&1 || fail "second plan --digest failed"
diff -u "$tmp/digests.txt" "$tmp/digests2.txt" >&2 || fail "plan digests not stable"

# an explicit legal schedule is honoured; an illegal one is rejected
"$MDHC" plan matvec --device cpu \
  --schedule 'tiles=7x9 parallel=[0] layers=[0]' >"$tmp/plan_sched.txt" 2>&1 ||
  fail "plan with explicit schedule exited non-zero"
if "$MDHC" plan matvec --device cpu \
  --schedule 'tiles=7x9 parallel=[99] layers=[0]' >/dev/null 2>&1; then
  fail "plan accepted an illegal schedule"
fi

# the plan cache reports its traffic under --metrics
"$MDHC" plan matmul --metrics >"$tmp/plan_metrics.txt" 2>&1 ||
  fail "plan --metrics exited non-zero"
grep -q 'lowering\.plan_cache\.' "$tmp/plan_metrics.txt" ||
  fail "no plan-cache counters under --metrics"

# --- fault injection and checkpoint/resume contracts ---

# a bad --inject spec is rejected with a non-zero exit
if "$MDHC" tune matmul --no-cache --budget 10 --inject 'bogus.site:raise' \
  >/dev/null 2>&1; then
  fail "bad --inject spec exited 0"
fi
# ... and so is a bad MDH_FAULTS spec, for any command
if MDH_FAULTS='cost.eval:explode' "$MDHC" list >/dev/null 2>&1; then
  fail "bad MDH_FAULTS spec exited 0"
fi

# a one-shot injected cost fault in a parallel fan-out degrades
# gracefully: same schedule as the fault-free run, exit 0 (sequential
# searches have no fallback — an injected raise there is the crash case,
# covered by the checkpoint/resume contract below)
"$MDHC" tune matmul --no-cache --budget 40 --strategy random \
  >"$tmp/rand_ref.txt" 2>/dev/null || fail "random-strategy reference failed"
"$MDHC" tune matmul --no-cache --budget 40 --strategy random --parallel \
  --inject 'cost.eval:raise@10' >"$tmp/chaos.txt" 2>/dev/null ||
  fail "tune under one-shot injection failed"
# the cost-model line is process-local accounting (a degraded retry
# re-evaluates configs), so exclude it like the wall-clock timings
grep -v 'wall)\|^cost model:' "$tmp/rand_ref.txt" >"$tmp/rand_ref.cmp"
grep -v 'wall)\|^cost model:' "$tmp/chaos.txt" >"$tmp/chaos.cmp"
diff -u "$tmp/rand_ref.cmp" "$tmp/chaos.cmp" >&2 ||
  fail "one-shot injection changed the tuned schedule"

# an immediate deadline suspends annealing to a checkpoint with exit 3,
# and --resume completes bit-identically to an uninterrupted run
"$MDHC" tune matmul --strategy anneal --budget 60 --seed 9 \
  --tuning-db "$tmp/ref.db" >"$tmp/anneal_ref.txt" 2>/dev/null ||
  fail "reference anneal tune failed"
rc=0
"$MDHC" tune matmul --strategy anneal --budget 60 --seed 9 \
  --tuning-db "$tmp/resume.db" --checkpoint "$tmp/tune.ckpt" \
  --deadline 0.0000001 >/dev/null 2>"$tmp/suspend.err" || rc=$?
[ "$rc" -eq 3 ] || fail "deadline suspension did not exit 3 (got $rc)"
[ -f "$tmp/tune.ckpt" ] || fail "suspension left no checkpoint"
grep -q 'rerun with --resume' "$tmp/suspend.err" || fail "no resume hint on stderr"
"$MDHC" tune matmul --strategy anneal --budget 60 --seed 9 \
  --tuning-db "$tmp/resume.db" --checkpoint "$tmp/tune.ckpt" --resume \
  >"$tmp/anneal_resumed.txt" 2>/dev/null || fail "resume after suspension failed"
grep -v 'wall)\|^cost model:' "$tmp/anneal_ref.txt" >"$tmp/anneal_ref.cmp"
grep -v 'wall)\|^cost model:' "$tmp/anneal_resumed.txt" >"$tmp/anneal_resumed.cmp"
diff -u "$tmp/anneal_ref.cmp" "$tmp/anneal_resumed.cmp" >&2 ||
  fail "resumed tune differs from uninterrupted run"
[ ! -f "$tmp/tune.ckpt" ] || fail "checkpoint not deleted after completion"

# a clean catalogue workload checks out with exit 0
"$MDHC" check matmul >"$tmp/check_ok.txt" 2>&1 || fail "check matmul exited non-zero"
grep -q 'checked 1 target' "$tmp/check_ok.txt" || fail "check printed no summary"

# a broken pragma yields exit 1 and at least two distinct diagnostic codes,
# each anchored to a source position, in a single invocation
if "$MDHC" check --file fixtures/broken.mdh >"$tmp/check_bad.txt" 2>&1; then
  fail "check on broken.mdh exited 0"
fi
codes=$(grep -oE 'MDH[0-9]+' "$tmp/check_bad.txt" | sort -u | wc -l)
[ "$codes" -ge 2 ] || fail "check on broken.mdh reported fewer than 2 distinct codes"
grep -Eq ':[0-9]+:[0-9]+: error\[MDH' "$tmp/check_bad.txt" ||
  fail "check diagnostics carry no source positions"

# warnings gate the exit code only under --strict; hints never do
"$MDHC" check --file fixtures/warn.mdh >"$tmp/check_warn.txt" 2>&1 ||
  fail "warning-only check exited non-zero without --strict"
grep -q 'warning\[MDH101\]' "$tmp/check_warn.txt" || fail "unused-input warning missing"
if "$MDHC" check --strict --file fixtures/warn.mdh >/dev/null 2>&1; then
  fail "check --strict ignored a warning"
fi

# --json emits SARIF with rule identifiers
"$MDHC" check --json --file fixtures/broken.mdh >"$tmp/check.sarif" 2>&1 || true
grep -q '"ruleId"' "$tmp/check.sarif" || fail "check --json emitted no ruleId"
grep -q '"version":"2.1.0"' "$tmp/check.sarif" || fail "check --json is not SARIF 2.1.0"

echo "cli_test: all checks passed"
