#!/bin/sh
# CLI contract tests for mdhc: --version, non-zero exit codes on bad
# input, observability flags, and schedule bit-identity under --trace.
# Usage: cli_test.sh path/to/mdhc.exe
set -eu

MDHC=$1
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# --version exits 0 and prints a dotted version number
"$MDHC" --version >"$tmp/version.txt" 2>&1 || fail "--version exited non-zero"
grep -Eq '^[0-9]+\.[0-9]+' "$tmp/version.txt" || fail "--version printed no version"

# bad invocations must exit non-zero (and not crash)
if "$MDHC" frobnicate >/dev/null 2>&1; then
  fail "unknown subcommand exited 0"
fi
if "$MDHC" tune no-such-workload --no-cache >/dev/null 2>&1; then
  fail "unknown workload exited 0"
fi
if "$MDHC" tune matmul --no-cache --device quantum >/dev/null 2>&1; then
  fail "unknown device exited 0"
fi
if "$MDHC" tune matmul --no-cache --input 99 >/dev/null 2>&1; then
  fail "unknown input set exited 0"
fi
if "$MDHC" tune >/dev/null 2>&1; then
  fail "missing positional workload exited 0"
fi

# tune with observability on: exit 0, metrics summary on stderr (stdout
# must stay machine-readable), trace file is Chrome trace_event JSON
"$MDHC" tune matmul --no-cache --budget 40 \
  --trace "$tmp/trace.json" --metrics >"$tmp/traced.txt" 2>"$tmp/traced.err" ||
  fail "tune --trace --metrics exited non-zero"
grep -q '"traceEvents"' "$tmp/trace.json" || fail "trace file has no traceEvents"
grep -q '"ph"' "$tmp/trace.json" || fail "trace file has no events"
grep -q '\[metrics\]' "$tmp/traced.err" || fail "no [metrics] summary on stderr"
if grep -q '\[metrics\]' "$tmp/traced.txt"; then
  fail "[metrics] summary leaked onto stdout"
fi
grep -q 'trace written to' "$tmp/traced.err" || fail "no trace notice on stderr"

# --metrics-out routes the report to a file; stderr stays quiet about it
"$MDHC" run dot --metrics --metrics-out "$tmp/metrics.txt" \
  >"$tmp/run_mout.txt" 2>"$tmp/run_mout.err" ||
  fail "run --metrics-out exited non-zero"
grep -q '\[metrics\]' "$tmp/metrics.txt" || fail "--metrics-out wrote no summary"
if grep -q '\[metrics\]' "$tmp/run_mout.txt" "$tmp/run_mout.err"; then
  fail "--metrics-out still printed the summary to a stream"
fi

# bit-identity: the tuned schedule (and every other deterministic line)
# is unchanged by tracing and metrics; only wall-clock timings may differ
"$MDHC" tune matmul --no-cache --budget 40 >"$tmp/plain.txt" 2>/dev/null ||
  fail "plain tune exited non-zero"
grep -v 'wall)' "$tmp/plain.txt" >"$tmp/plain.cmp"
grep -v 'wall)' "$tmp/traced.txt" >"$tmp/traced.cmp"
diff -u "$tmp/plain.cmp" "$tmp/traced.cmp" >&2 ||
  fail "tracing changed deterministic output"
grep -q '^best schedule:' "$tmp/plain.cmp" || fail "no schedule line to compare"

# run with --metrics also works end to end
"$MDHC" run dot --metrics >"$tmp/run.txt" 2>&1 || fail "run --metrics exited non-zero"
grep -q 'result check: OK' "$tmp/run.txt" || fail "run result check failed"

# --- run backends: specializer and compiled C ---

# the plan-compiled specializer executes and reports its cache traffic
"$MDHC" run matmul --backend special --metrics >"$tmp/run_special.txt" 2>&1 ||
  fail "run --backend special exited non-zero"
grep -q 'result check: OK' "$tmp/run_special.txt" ||
  fail "specializer result check failed"
grep -q 'runtime\.specializer\.' "$tmp/run_special.txt" ||
  fail "no specializer counters under --metrics"

# the auto backend honours --no-specialize, and interp always bypasses
"$MDHC" run matmul --parallel --no-specialize >"$tmp/run_nospec.txt" 2>&1 ||
  fail "run --no-specialize exited non-zero"
grep -q 'result check: OK' "$tmp/run_nospec.txt" || fail "--no-specialize check failed"
"$MDHC" run matmul --backend interp >"$tmp/run_interp.txt" 2>&1 ||
  fail "run --backend interp exited non-zero"
grep -q 'result check: OK' "$tmp/run_interp.txt" || fail "interp check failed"

# a record-typed workload is not specializable: a clean error, not a crash
if "$MDHC" run prl --backend special >/dev/null 2>&1; then
  fail "run prl --backend special exited 0"
fi

# compiled OpenMP C, when a C compiler is present (skip, never silently)
if command -v gcc >/dev/null 2>&1; then
  "$MDHC" run matmul --backend cc >"$tmp/run_cc.txt" 2>&1 ||
    fail "run --backend cc exited non-zero"
  grep -q 'result check: OK' "$tmp/run_cc.txt" || fail "compiled-C check failed"
else
  echo "cli_test: SKIP compiled-C backend check (gcc not on PATH)"
fi

# --- mdhc check: the static diagnostics engine ---

# this PR's version
grep -q '^1\.8\.0' "$tmp/version.txt" || fail "--version is not 1.8.0"

# --- mdhc plan: the executable IR, printed and fingerprinted ---

# a single workload/device plan names its distribute level and a digest
"$MDHC" plan matvec --device cpu >"$tmp/plan.txt" 2>&1 ||
  fail "plan matvec exited non-zero"
grep -q 'distribute dims' "$tmp/plan.txt" || fail "plan printed no distribute level"
grep -Eq 'digest [0-9a-f]{8}' "$tmp/plan.txt" || fail "plan printed no digest"

# --digest emits one `workload device digest` line per catalogue entry x device
"$MDHC" plan --digest >"$tmp/digests.txt" 2>&1 || fail "plan --digest exited non-zero"
grep -Eq '^matvec +cpu +[0-9a-f]{8}$' "$tmp/digests.txt" ||
  fail "plan --digest has no matvec cpu line"
n_lines=$(wc -l <"$tmp/digests.txt")
n_workloads=$("$MDHC" list | wc -l)
[ "$n_lines" -eq $((2 * n_workloads)) ] ||
  fail "plan --digest line count is not 2 x catalogue size"

# digests are deterministic across invocations
"$MDHC" plan --digest >"$tmp/digests2.txt" 2>&1 || fail "second plan --digest failed"
diff -u "$tmp/digests.txt" "$tmp/digests2.txt" >&2 || fail "plan digests not stable"

# an explicit legal schedule is honoured; an illegal one is rejected
"$MDHC" plan matvec --device cpu \
  --schedule 'tiles=7x9 parallel=[0] layers=[0]' >"$tmp/plan_sched.txt" 2>&1 ||
  fail "plan with explicit schedule exited non-zero"
if "$MDHC" plan matvec --device cpu \
  --schedule 'tiles=7x9 parallel=[99] layers=[0]' >/dev/null 2>&1; then
  fail "plan accepted an illegal schedule"
fi

# the plan cache reports its traffic under --metrics
"$MDHC" plan matmul --metrics >"$tmp/plan_metrics.txt" 2>&1 ||
  fail "plan --metrics exited non-zero"
grep -q 'lowering\.plan_cache\.' "$tmp/plan_metrics.txt" ||
  fail "no plan-cache counters under --metrics"

# --- fault injection and checkpoint/resume contracts ---

# a bad --inject spec is rejected with a non-zero exit
if "$MDHC" tune matmul --no-cache --budget 10 --inject 'bogus.site:raise' \
  >/dev/null 2>&1; then
  fail "bad --inject spec exited 0"
fi
# ... and so is a bad MDH_FAULTS spec, for any command
if MDH_FAULTS='cost.eval:explode' "$MDHC" list >/dev/null 2>&1; then
  fail "bad MDH_FAULTS spec exited 0"
fi

# trigger-syntax edge cases each die with their *named* diagnostic, so a
# typo'd chaos spec is debuggable from the error alone
inject_diag() { # spec expected-fragment
  if "$MDHC" tune matmul --no-cache --budget 5 --inject "$1" \
    >/dev/null 2>"$tmp/inject.err"; then
    fail "--inject '$1' exited 0"
  fi
  grep -q "$2" "$tmp/inject.err" ||
    fail "--inject '$1' did not mention '$2' (got: $(cat "$tmp/inject.err"))"
}
inject_diag 'cost.eval:raise@0' 'bad hit index'
inject_diag 'cost.eval:raise@-1' 'bad hit index'
inject_diag 'cost.eval:raise/0' 'bad repeat count'
inject_diag 'serve.reed:raise' 'unknown site'
inject_diag 'SERVE.READ:raise' 'unknown site'
# the unknown-site diagnostic enumerates the valid sites, serve.* included
inject_diag 'nope:raise' 'serve.handle'

# --remote to a socket nobody serves is a clean, named failure
if "$MDHC" tune matmul --remote "$tmp/no-such.sock" >/dev/null 2>"$tmp/remote.err"; then
  fail "--remote to a dead socket exited 0"
fi
grep -q 'is the daemon running?' "$tmp/remote.err" ||
  fail "--remote failure does not point at the daemon"

# a one-shot injected cost fault in a parallel fan-out degrades
# gracefully: same schedule as the fault-free run, exit 0 (sequential
# searches have no fallback — an injected raise there is the crash case,
# covered by the checkpoint/resume contract below)
"$MDHC" tune matmul --no-cache --budget 40 --strategy random \
  >"$tmp/rand_ref.txt" 2>/dev/null || fail "random-strategy reference failed"
"$MDHC" tune matmul --no-cache --budget 40 --strategy random --parallel \
  --inject 'cost.eval:raise@10' >"$tmp/chaos.txt" 2>/dev/null ||
  fail "tune under one-shot injection failed"
# the cost-model line is process-local accounting (a degraded retry
# re-evaluates configs), so exclude it like the wall-clock timings
grep -v 'wall)\|^cost model:' "$tmp/rand_ref.txt" >"$tmp/rand_ref.cmp"
grep -v 'wall)\|^cost model:' "$tmp/chaos.txt" >"$tmp/chaos.cmp"
diff -u "$tmp/rand_ref.cmp" "$tmp/chaos.cmp" >&2 ||
  fail "one-shot injection changed the tuned schedule"

# an immediate deadline suspends annealing to a checkpoint with exit 3,
# and --resume completes bit-identically to an uninterrupted run
"$MDHC" tune matmul --strategy anneal --budget 60 --seed 9 \
  --tuning-db "$tmp/ref.db" >"$tmp/anneal_ref.txt" 2>/dev/null ||
  fail "reference anneal tune failed"
rc=0
"$MDHC" tune matmul --strategy anneal --budget 60 --seed 9 \
  --tuning-db "$tmp/resume.db" --checkpoint "$tmp/tune.ckpt" \
  --deadline 0.0000001 >/dev/null 2>"$tmp/suspend.err" || rc=$?
[ "$rc" -eq 3 ] || fail "deadline suspension did not exit 3 (got $rc)"
[ -f "$tmp/tune.ckpt" ] || fail "suspension left no checkpoint"
grep -q 'rerun with --resume' "$tmp/suspend.err" || fail "no resume hint on stderr"
"$MDHC" tune matmul --strategy anneal --budget 60 --seed 9 \
  --tuning-db "$tmp/resume.db" --checkpoint "$tmp/tune.ckpt" --resume \
  >"$tmp/anneal_resumed.txt" 2>/dev/null || fail "resume after suspension failed"
grep -v 'wall)\|^cost model:' "$tmp/anneal_ref.txt" >"$tmp/anneal_ref.cmp"
grep -v 'wall)\|^cost model:' "$tmp/anneal_resumed.txt" >"$tmp/anneal_resumed.cmp"
diff -u "$tmp/anneal_ref.cmp" "$tmp/anneal_resumed.cmp" >&2 ||
  fail "resumed tune differs from uninterrupted run"
[ ! -f "$tmp/tune.ckpt" ] || fail "checkpoint not deleted after completion"

# a clean catalogue workload checks out with exit 0
"$MDHC" check matmul >"$tmp/check_ok.txt" 2>&1 || fail "check matmul exited non-zero"
grep -q 'checked 1 target' "$tmp/check_ok.txt" || fail "check printed no summary"

# a broken pragma yields exit 1 and at least two distinct diagnostic codes,
# each anchored to a source position, in a single invocation
if "$MDHC" check --file fixtures/broken.mdh >"$tmp/check_bad.txt" 2>&1; then
  fail "check on broken.mdh exited 0"
fi
codes=$(grep -oE 'MDH[0-9]+' "$tmp/check_bad.txt" | sort -u | wc -l)
[ "$codes" -ge 2 ] || fail "check on broken.mdh reported fewer than 2 distinct codes"
grep -Eq ':[0-9]+:[0-9]+: error\[MDH' "$tmp/check_bad.txt" ||
  fail "check diagnostics carry no source positions"

# warnings gate the exit code only under --strict; hints never do
"$MDHC" check --file fixtures/warn.mdh >"$tmp/check_warn.txt" 2>&1 ||
  fail "warning-only check exited non-zero without --strict"
grep -q 'warning\[MDH101\]' "$tmp/check_warn.txt" || fail "unused-input warning missing"
if "$MDHC" check --strict --file fixtures/warn.mdh >/dev/null 2>&1; then
  fail "check --strict ignored a warning"
fi

# --json emits SARIF with rule identifiers
"$MDHC" check --json --file fixtures/broken.mdh >"$tmp/check.sarif" 2>&1 || true
grep -q '"ruleId"' "$tmp/check.sarif" || fail "check --json emitted no ruleId"
grep -q '"version":"2.1.0"' "$tmp/check.sarif" || fail "check --json is not SARIF 2.1.0"

# --- mdhc optimize: the verified equality-saturation pass ---

# a workload with redundancy reports applied rules, their justification,
# and a cost-model delta
"$MDHC" optimize prl >"$tmp/opt_prl.txt" 2>&1 || fail "optimize prl exited non-zero"
grep -q 'raw plan:' "$tmp/opt_prl.txt" || fail "optimize printed no raw plan line"
grep -q 'justification:' "$tmp/opt_prl.txt" || fail "optimize printed no justification"
grep -q 'cost-model delta:' "$tmp/opt_prl.txt" || fail "optimize printed no delta"

# unknown workloads and devices are clean non-zero exits
if "$MDHC" optimize no-such-workload >/dev/null 2>&1; then
  fail "optimize of unknown workload exited 0"
fi
if "$MDHC" optimize prl --device quantum >/dev/null 2>&1; then
  fail "optimize on unknown device exited 0"
fi

# --json is a single mdh-optimize/1 document on stdout (deep
# well-formedness is pinned in test_rewrite.ml through Json_in, which
# parses this same emitter's output)
"$MDHC" optimize prl --json --metrics >"$tmp/opt.json" 2>/dev/null ||
  fail "optimize --json exited non-zero"
head -c 1 "$tmp/opt.json" | grep -q '{' || fail "optimize --json stdout is not JSON"
grep -q '"schema":"mdh-optimize/1"' "$tmp/opt.json" ||
  fail "optimize --json has no schema"
grep -q '"justification"' "$tmp/opt.json" || fail "optimize --json has no justification"
if grep -q '\[metrics\]' "$tmp/opt.json"; then
  fail "--metrics leaked into optimize --json stdout"
fi

# --no-rewrite reports the raw plan unchanged: same digest on both lines,
# zero applied rules, and its raw line is bit-identical to the default
# run's raw line (the pass only ever adds a rewritten alternative)
"$MDHC" optimize prl --no-rewrite >"$tmp/opt_raw.txt" 2>&1 ||
  fail "optimize --no-rewrite exited non-zero"
grep -q 'no rewrites applied' "$tmp/opt_raw.txt" ||
  fail "--no-rewrite still applied rewrites"
raw_digest=$(grep -oE 'digest [0-9a-f]{8}' "$tmp/opt_raw.txt" | sort -u | wc -l)
[ "$raw_digest" -eq 1 ] || fail "--no-rewrite changed the plan digest"
grep '^raw plan:' "$tmp/opt_prl.txt" >"$tmp/opt_rawline_default.txt"
grep '^raw plan:' "$tmp/opt_raw.txt" >"$tmp/opt_rawline_norw.txt"
diff -u "$tmp/opt_rawline_default.txt" "$tmp/opt_rawline_norw.txt" >&2 ||
  fail "--no-rewrite changed the raw plan line"

# tune honours --no-rewrite as a first-class escape hatch
"$MDHC" tune matmul --no-cache --budget 10 --no-rewrite >/dev/null 2>&1 ||
  fail "tune --no-rewrite exited non-zero"

# --- mdhc profile: the plan-level profiler ---

# the tree view names plan-level paths, the enclosing exec row, and the
# backend phases
"$MDHC" profile matmul >"$tmp/profile.txt" 2>&1 || fail "profile matmul exited non-zero"
grep -Eq '^  L0 ' "$tmp/profile.txt" || fail "profile printed no L0 row"
grep -Eq '^  leaf ' "$tmp/profile.txt" || fail "profile printed no leaf row"
grep -Eq '^  exec ' "$tmp/profile.txt" || fail "profile printed no exec row"
grep -q 'specializer.run' "$tmp/profile.txt" || fail "profile printed no phases"
grep -Eq 'digest [0-9a-f]{8}' "$tmp/profile.txt" || fail "profile printed no digest"

# --json replaces the tree with the mdh-profile/1 document, and --metrics
# must not pollute it
"$MDHC" profile matmul --json --metrics >"$tmp/profile.json" 2>/dev/null ||
  fail "profile --json exited non-zero"
head -c 1 "$tmp/profile.json" | grep -q '{' || fail "profile --json stdout is not JSON"
grep -q '"schema": "mdh-profile/1"' "$tmp/profile.json" ||
  fail "profile --json has no schema"
grep -q '"model_fraction"' "$tmp/profile.json" ||
  fail "profile --json has no model attribution"
if grep -q '\[metrics\]' "$tmp/profile.json"; then
  fail "--metrics leaked into profile --json stdout"
fi

# --flame writes collapsed stacks: workload;digest;level-chain self_us
"$MDHC" profile matmul --flame "$tmp/matmul.folded" >/dev/null 2>&1 ||
  fail "profile --flame exited non-zero"
grep -Eq '^matmul;[0-9a-f]{8};L0 .* [0-9]+$' "$tmp/matmul.folded" ||
  fail "flame file has no collapsed stacks"

# the walker backend profiles workloads the specializer rejects...
"$MDHC" profile prl --backend interp >"$tmp/profile_prl.txt" 2>&1 ||
  fail "profile prl --backend interp exited non-zero"
grep -Eq '^  exec ' "$tmp/profile_prl.txt" || fail "walker profile has no exec row"
# ...and forcing the specializer on them is a clean error, not a crash
if "$MDHC" profile prl --backend special >/dev/null 2>&1; then
  fail "profile prl --backend special exited 0"
fi
if "$MDHC" profile no-such-workload >/dev/null 2>&1; then
  fail "profile of unknown workload exited 0"
fi

echo "cli_test: all checks passed"
