(* Tests for the Mdh_analysis static analyzer: diagnostic accumulation and
   ordering, error-code stability, SARIF well-formedness, the combine-operator
   property verifier, and the semantic lints. *)

module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Validate = Mdh_directive.Validate
module W = Mdh_workloads.Workload
module Diag = Mdh_analysis.Diagnostic
module Opcheck = Mdh_analysis.Opcheck
module Analyze = Mdh_analysis.Analyze

let check = Alcotest.check

let codes ds = List.map (fun d -> d.Diag.code) ds

let errors ds = List.filter (fun d -> d.Diag.severity = Diag.Error) ds

(* --- the broken pragma fixture: several errors in one invocation --- *)

let broken_src =
  {|#pragma mdh out(w : fp32) inp(M : fp32, v : fp32) combine_ops(cc, pw(add), pw(mul))
for (i = 0; i < 4; i++)
  for (i = 0; i < 0; i++)
    w[i] = M[i, i] * v[i];
|}

let test_accumulation_ordering () =
  let ds = Analyze.pragma broken_src in
  check (Alcotest.list Alcotest.string) "codes in pass order"
    [ "MDH002"; "MDH003"; "MDH004" ] (codes (errors ds));
  check Alcotest.bool "at least two distinct codes" true
    (List.length (List.sort_uniq compare (codes (errors ds))) >= 2);
  List.iter
    (fun d ->
      check Alcotest.bool
        (Printf.sprintf "%s has a span" d.Diag.code)
        true (d.Diag.span <> None))
    (errors ds)

let test_first_error_matches_validate () =
  (* the analyzer's first error-severity code must agree with the fail-fast
     validator on the same directive *)
  let cases =
    [ (* imperfect nest *)
      D.make ~name:"imperfect" ~out:[ D.buffer "w" Scalar.Fp64 ] ~inp:[]
        ~combine_ops:[ Combine.cc ]
        (D.Seq
           [ D.for_ "i" 2 (D.body [ D.assign "w" [ Expr.idx "i" ] (Expr.f64 1.0) ]);
             D.body [ D.assign "w" [ Expr.int 0 ] (Expr.f64 1.0) ] ]);
      (* duplicate buffer *)
      D.make ~name:"dup" ~out:[ D.buffer "w" Scalar.Fp64 ]
        ~inp:[ D.buffer "w" Scalar.Fp64 ]
        ~combine_ops:[ Combine.cc ]
        (D.for_ "i" 2 (D.body [ D.assign "w" [ Expr.idx "i" ] (Expr.f64 1.0) ]));
      (* assignment to input *)
      D.make ~name:"wrin" ~out:[ D.buffer "w" Scalar.Fp64 ]
        ~inp:[ D.buffer "x" Scalar.Fp64 ]
        ~combine_ops:[ Combine.cc ]
        (D.for_ "i" 2 (D.body [ D.assign "x" [ Expr.idx "i" ] (Expr.f64 1.0) ]));
      (* never assigned *)
      D.make ~name:"noassign" ~out:[ D.buffer "w" Scalar.Fp64 ]
        ~inp:[ D.buffer "x" Scalar.Fp64 ]
        ~combine_ops:[ Combine.cc ]
        (D.for_ "i" 2
           (D.body [ D.let_stmt "t" (Expr.read "x" [ Expr.idx "i" ]) ]));
      (* out-view: output depends on a pw-collapsed dimension *)
      D.make ~name:"collapsed" ~out:[ D.buffer "w" Scalar.Fp64 ]
        ~inp:[ D.buffer "x" Scalar.Fp64 ]
        ~combine_ops:[ Combine.pw (Combine.add Scalar.Fp64) ]
        (D.for_ "i" 2
           (D.body [ D.assign "w" [ Expr.idx "i" ] (Expr.read "x" [ Expr.idx "i" ]) ])) ]
  in
  List.iter
    (fun dir ->
      match Validate.check dir with
      | Ok () -> Alcotest.failf "case %s unexpectedly valid" dir.D.dir_name
      | Error e -> (
        let ds = Analyze.directive dir in
        match errors ds with
        | [] -> Alcotest.failf "case %s: analyzer found no error" dir.D.dir_name
        | first :: _ ->
          check Alcotest.string
            (Printf.sprintf "case %s first code" dir.D.dir_name)
            (Validate.error_code e.Validate.kind)
            first.Diag.code))
    cases

let test_multi_error_body () =
  (* two independent broken statements are both reported *)
  let dir =
    D.make ~name:"multi"
      ~out:[ D.buffer "a" Scalar.Fp64; D.buffer "b" Scalar.Fp64 ]
      ~inp:[]
      ~combine_ops:[ Combine.cc ]
      (D.for_ "i" 2
         (D.body
            [ D.assign "a" [ Expr.idx "i" ] (Expr.read "ghost1" [ Expr.idx "i" ]);
              D.assign "b" [ Expr.idx "i" ] (Expr.read "ghost2" [ Expr.idx "i" ]) ]))
  in
  let ds = errors (Analyze.directive dir) in
  check (Alcotest.list Alcotest.string) "both unknown buffers reported"
    [ "MDH007"; "MDH007" ] (codes ds);
  check
    (Alcotest.list (Alcotest.option Alcotest.string))
    "subjects" [ Some "ghost1"; Some "ghost2" ]
    (List.map (fun d -> d.Diag.subject) ds)

let test_out_view_details () =
  (* non-injective output access: the diagnostic exhibits colliding points *)
  let dir =
    D.make ~name:"collide" ~out:[ D.buffer "w" Scalar.Fp64 ]
      ~inp:[ D.buffer "x" Scalar.Fp64 ]
      ~combine_ops:[ Combine.cc; Combine.cc ]
      (D.for_ "i" 2
         (D.for_ "j" 2
            (D.body
               [ D.assign "w"
                   [ Expr.(idx "i" + idx "j") ]
                   (Expr.read "x" [ Expr.idx "i" ]) ])))
  in
  let ds = errors (Analyze.directive dir) in
  check (Alcotest.list Alcotest.string) "one MDH015" [ "MDH015" ] (codes ds);
  let msg = (List.hd ds).Diag.message in
  check Alcotest.bool "names colliding iteration points" true
    (Test_util.contains msg "both write");
  check Alcotest.bool "names the breaking dimension" true
    (Test_util.contains msg "dimension")

(* --- error-code table stability --- *)

let test_code_table_stable () =
  let expected =
    [ ("MDH001", Diag.Error); ("MDH002", Diag.Error); ("MDH003", Diag.Error);
      ("MDH004", Diag.Error); ("MDH005", Diag.Error); ("MDH006", Diag.Error);
      ("MDH007", Diag.Error); ("MDH008", Diag.Error); ("MDH009", Diag.Error);
      ("MDH010", Diag.Error); ("MDH011", Diag.Error); ("MDH012", Diag.Error);
      ("MDH013", Diag.Error); ("MDH014", Diag.Error); ("MDH015", Diag.Error);
      ("MDH016", Diag.Error); ("MDH017", Diag.Error); ("MDH020", Diag.Error);
      ("MDH021", Diag.Error); ("MDH022", Diag.Error); ("MDH023", Diag.Warning);
      ("MDH101", Diag.Warning); ("MDH102", Diag.Warning);
      ("MDH103", Diag.Warning); ("MDH110", Diag.Hint); ("MDH111", Diag.Hint);
      ("MDH112", Diag.Hint); ("MDH113", Diag.Hint); ("MDH120", Diag.Hint);
      ("MDH121", Diag.Hint) ]
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "registered codes and severities"
    (List.map (fun (c, s) -> (c, Diag.severity_to_string s)) expected)
    (List.map (fun (c, s, _) -> (c, Diag.severity_to_string s)) Diag.code_table);
  (* every Validate error kind maps into the table *)
  List.iter
    (fun kind ->
      let code = Validate.error_code kind in
      check Alcotest.bool (code ^ " described") true
        (Diag.describe_code code <> None))
    [ Validate.Imperfect_nest; Validate.Duplicate_loop_var "i";
      Validate.Nonpositive_extent "i";
      Validate.Combine_op_arity { dims = 1; ops = 2 };
      Validate.Mixed_reduction_kinds; Validate.Duplicate_buffer "b";
      Validate.Unknown_buffer "b"; Validate.Assign_to_input "b";
      Validate.Read_of_output "b"; Validate.Multiple_assignment "b";
      Validate.Missing_assignment "b"; Validate.Type_error "t";
      Validate.Shape_error "b"; Validate.Opaque_access_needs_shape "b";
      Validate.Invalid_out_view "b" ]

let test_exit_code_policy () =
  let d code severity =
    { Diag.code; severity; span = None; subject = None; message = "m" }
  in
  check Alcotest.int "clean" 0 (Diag.exit_code []);
  check Alcotest.int "errors fail" 1 (Diag.exit_code [ d "MDH001" Diag.Error ]);
  check Alcotest.int "warnings pass" 0 (Diag.exit_code [ d "MDH101" Diag.Warning ]);
  check Alcotest.int "warnings fail strict" 1
    (Diag.exit_code ~strict:true [ d "MDH101" Diag.Warning ]);
  check Alcotest.int "hints never fail" 0
    (Diag.exit_code ~strict:true [ d "MDH110" Diag.Hint ])

(* --- SARIF --- *)

let test_sarif_wellformed () =
  let module J = Mdh_support.Json_in in
  let ds = Analyze.pragma broken_src in
  let json = J.parse (Diag.sarif ~tool_version:"0.0.0" [ ("broken.mdh", ds) ]) in
  (match J.member "version" json with
  | Some (J.Str "2.1.0") -> ()
  | _ -> Alcotest.fail "sarif version");
  let run =
    match J.member "runs" json with
    | Some (J.Arr [ r ]) -> r
    | _ -> Alcotest.fail "one run expected"
  in
  (match
     Option.bind (J.member "tool" run) (J.member "driver")
     |> Fun.flip Option.bind (J.member "rules")
   with
  | Some (J.Arr rules) ->
    check Alcotest.int "rules = code table" (List.length Diag.code_table)
      (List.length rules)
  | _ -> Alcotest.fail "rules missing");
  match J.member "results" run with
  | Some (J.Arr results) ->
    check Alcotest.int "one result per diagnostic" (List.length ds)
      (List.length results);
    List.iter
      (fun r ->
        (match J.member "ruleId" r with
        | Some (J.Str code) ->
          check Alcotest.bool "ruleId registered" true
            (Diag.describe_code code <> None)
        | _ -> Alcotest.fail "ruleId missing");
        match J.member "level" r with
        | Some (J.Str ("error" | "warning" | "note")) -> ()
        | _ -> Alcotest.fail "bad level")
      results
  | _ -> Alcotest.fail "results missing"

(* --- combine-operator property verification --- *)

(* "first" is associative but NOT commutative: (a . b) . c = a . (b . c) = a *)
let first_fn ~commutative =
  Combine.custom ~name:"first" ~associative:true ~commutative (fun a _ -> a)

let test_opcheck_rejects_false_commutativity () =
  let fn = first_fn ~commutative:true in
  let report = Opcheck.verify ~ty:Scalar.Int32 fn in
  (match report.Opcheck.commutativity with
  | Opcheck.Counterexample _ -> ()
  | _ -> Alcotest.fail "commutativity should be falsified");
  (match report.Opcheck.associativity with
  | Opcheck.Verified n -> check Alcotest.bool "assoc checks ran" true (n > 0)
  | _ -> Alcotest.fail "associativity should hold");
  (match Opcheck.violations fn report with
  | [ ("commutativity", witness) ] ->
    check Alcotest.bool "witness shows values" true (String.length witness > 0)
  | vs ->
    Alcotest.failf "expected one commutativity violation, got %d" (List.length vs));
  let demoted = Opcheck.demote fn report in
  check Alcotest.bool "demoted commutative" false demoted.Combine.commutative;
  check Alcotest.bool "demotion keeps associativity" true demoted.Combine.associative;
  (* correctly-declared "first" has no violations *)
  let honest = first_fn ~commutative:false in
  check Alcotest.int "honest declaration clean" 0
    (List.length (Opcheck.violations honest (Opcheck.verify ~ty:Scalar.Int32 honest)))

let test_opcheck_rejects_false_associativity () =
  (* averaging is commutative but not associative *)
  let avg =
    Combine.custom ~name:"avg" ~associative:true ~commutative:true (fun a b ->
        Scalar.div (Scalar.add a b) (Scalar.F64 2.0))
  in
  let report = Opcheck.verify ~ty:Scalar.Fp64 avg in
  (match report.Opcheck.associativity with
  | Opcheck.Counterexample _ -> ()
  | _ -> Alcotest.fail "associativity should be falsified");
  (match report.Opcheck.commutativity with
  | Opcheck.Verified _ -> ()
  | _ -> Alcotest.fail "commutativity should hold");
  check
    (Alcotest.list Alcotest.string)
    "violations" [ "associativity" ]
    (List.map fst (Opcheck.violations avg report));
  let demoted = Opcheck.demote avg report in
  check Alcotest.bool "demoted associative" false demoted.Combine.associative;
  check Alcotest.bool "demoted op is no longer parallelisable" false
    (Combine.parallelisable (Combine.pw demoted))

let test_opcheck_rejects_false_identity () =
  let add_bad_id =
    Combine.custom ~name:"addone" ~associative:true ~commutative:true
      ~identity:(Scalar.I32 1l) Scalar.add
  in
  let report = Opcheck.verify ~ty:Scalar.Int32 add_bad_id in
  (match report.Opcheck.identity with
  | Some (Opcheck.Counterexample _) -> ()
  | _ -> Alcotest.fail "identity should be falsified");
  check
    (Alcotest.list Alcotest.string)
    "violations" [ "identity" ]
    (List.map fst (Opcheck.violations add_bad_id report));
  check Alcotest.bool "identity withdrawn" true
    ((Opcheck.demote add_bad_id report).Combine.identity = None)

let test_opcheck_unexploited () =
  (* max is commutative but declares only associativity *)
  let shy = Combine.custom ~name:"shy_max" ~associative:true Scalar.max_v in
  let report = Opcheck.verify ~ty:Scalar.Int32 shy in
  check
    (Alcotest.list Alcotest.string)
    "commutativity unexploited" [ "commutativity" ]
    (Opcheck.unexploited shy report);
  check Alcotest.int "no violations" 0 (List.length (Opcheck.violations shy report))

let test_opcheck_deterministic () =
  let fn = first_fn ~commutative:true in
  let r1 = Opcheck.verify ~seed:7 ~ty:Scalar.Fp32 fn in
  let r2 = Opcheck.verify ~seed:7 ~ty:Scalar.Fp32 fn in
  check Alcotest.int "same evaluations" r1.Opcheck.evaluations r2.Opcheck.evaluations;
  match (r1.Opcheck.commutativity, r2.Opcheck.commutativity) with
  | Opcheck.Counterexample w1, Opcheck.Counterexample w2 ->
    check Alcotest.string "same witness" w1 w2
  | _ -> Alcotest.fail "commutativity should be falsified in both runs"

(* the acceptance-criterion scenario: a valid directive whose combine
   operator falsely declares commutativity is rejected by mdhc check *)
let test_directive_rejects_misdeclared_operator () =
  let dir =
    D.make ~name:"lying" ~out:[ D.buffer "w" Scalar.Fp64 ]
      ~inp:[ D.buffer "x" Scalar.Fp64 ]
      ~combine_ops:[ Combine.cc; Combine.pw (first_fn ~commutative:true) ]
      (D.for_ "i" 4
         (D.for_ "k" 4
            (D.body
               [ D.assign "w" [ Expr.idx "i" ]
                   (Expr.read "x" [ Expr.idx "k" ]) ])))
  in
  check Alcotest.bool "Validate accepts (it trusts declarations)" true
    (Result.is_ok (Validate.check dir));
  let ds = Analyze.directive dir in
  check (Alcotest.list Alcotest.string) "MDH021 fires" [ "MDH021" ]
    (codes (errors ds));
  check Alcotest.int "exit code 1" 1 (Diag.exit_code ds);
  (* with verification off the directive passes *)
  check Alcotest.int "no errors without verify_ops" 0
    (Diag.error_count (Analyze.directive ~verify_ops:false dir))

(* --- lints --- *)

let matvec_like ?(inp = []) ?(ops = [ Combine.cc; Combine.pw (Combine.add Scalar.Fp64) ])
    ?(i = 4) ?(k = 4) () =
  D.make ~name:"mv"
    ~out:[ D.buffer "w" Scalar.Fp64 ]
    ~inp:([ D.buffer "m" Scalar.Fp64; D.buffer "v" Scalar.Fp64 ] @ inp)
    ~combine_ops:ops
    (D.for_ "i" i
       (D.for_ "k" k
          (D.body
             [ D.assign "w" [ Expr.idx "i" ]
                 Expr.(
                   read "m" [ idx "i"; idx "k" ] * read "v" [ idx "k" ]) ])))

let find_code code ds = List.find_opt (fun d -> d.Diag.code = code) ds

let test_lint_unused_input () =
  let dir = matvec_like ~inp:[ D.buffer ~shape:[| 8 |] "unused" Scalar.Fp64 ] () in
  let ds = Analyze.directive dir in
  check Alcotest.int "no errors" 0 (Diag.error_count ds);
  match find_code "MDH101" ds with
  | Some d ->
    check (Alcotest.option Alcotest.string) "subject" (Some "unused") d.Diag.subject;
    check Alcotest.string "warning" "warning" (Diag.severity_to_string d.Diag.severity)
  | None -> Alcotest.fail "MDH101 expected"

let test_lint_unparallelisable () =
  let nonassoc =
    Combine.custom ~name:"avg" ~associative:false ~commutative:true (fun a b ->
        Scalar.div (Scalar.add a b) (Scalar.F64 2.0))
  in
  let dir = matvec_like ~ops:[ Combine.cc; Combine.pw nonassoc ] () in
  let ds = Analyze.directive dir in
  check Alcotest.int "no errors" 0 (Diag.error_count ds);
  (match find_code "MDH102" ds with
  | Some d ->
    check (Alcotest.option Alcotest.string) "names the loop" (Some "k") d.Diag.subject
  | None -> Alcotest.fail "MDH102 expected");
  check Alcotest.bool "cc dim still parallel, no MDH103" true
    (find_code "MDH103" ds = None);
  (* all-reduction, non-associative: nothing parallelisable at all *)
  let dir2 =
    D.make ~name:"seq" ~out:[ D.buffer "w" Scalar.Fp64 ]
      ~inp:[ D.buffer "x" Scalar.Fp64 ]
      ~combine_ops:[ Combine.pw nonassoc ]
      (D.for_ "i" 4
         (D.body [ D.assign "w" [ Expr.int 0 ] (Expr.read "x" [ Expr.idx "i" ]) ]))
  in
  let ds2 = Analyze.directive dir2 in
  check Alcotest.bool "MDH103 fires" true (find_code "MDH103" ds2 <> None)

let test_lint_degenerate_extent () =
  let ds = Analyze.directive (matvec_like ~i:1 ()) in
  match find_code "MDH110" ds with
  | Some d ->
    check (Alcotest.option Alcotest.string) "subject" (Some "i") d.Diag.subject;
    check Alcotest.string "hint" "hint" (Diag.severity_to_string d.Diag.severity)
  | None -> Alcotest.fail "MDH110 expected"

let test_lint_locality () =
  (* matmul with the classic ijk loop order: B[k,j] is strided in k *)
  let dir =
    D.make ~name:"mm" ~out:[ D.buffer "c" Scalar.Fp64 ]
      ~inp:[ D.buffer "a" Scalar.Fp64; D.buffer "b" Scalar.Fp64 ]
      ~combine_ops:[ Combine.cc; Combine.cc; Combine.pw (Combine.add Scalar.Fp64) ]
      (D.for_ "i" 4
         (D.for_ "j" 4
            (D.for_ "k" 4
               (D.body
                  [ D.assign "c" [ Expr.idx "i"; Expr.idx "j" ]
                      Expr.(
                        read "a" [ idx "i"; idx "k" ] * read "b" [ idx "k"; idx "j" ]) ]))))
  in
  let ds = Analyze.directive dir in
  (match find_code "MDH111" ds with
  | Some d ->
    check (Alcotest.option Alcotest.string) "blames B" (Some "b") d.Diag.subject
  | None -> Alcotest.fail "MDH111 expected");
  (* matvec walks everything stride-1: no locality hint *)
  check Alcotest.bool "matvec clean" true
    (find_code "MDH111" (Analyze.directive (matvec_like ())) = None)

let test_plan_hint_reduction_parallelism () =
  (* dot is a pure reduction: concatenation-only parallelism is 1, while the
     lowering's default plan tree-reduces k — the plan-aware pass hints *)
  let dot =
    match Mdh_workloads.Catalog.find "dot" with
    | Some w -> w
    | None -> Alcotest.fail "dot workload missing"
  in
  let ds = Analyze.directive (dot.W.make dot.W.test_params) in
  (match find_code "MDH113" ds with
  | Some d ->
    check Alcotest.string "hint" "hint" (Diag.severity_to_string d.Diag.severity);
    check (Alcotest.option Alcotest.string) "blames the reduction loop"
      (Some "k") d.Diag.subject
  | None -> Alcotest.fail "MDH113 expected on dot");
  (* a non-associative reduction cannot be tree-reduced: no hint *)
  let nonassoc =
    Combine.custom ~name:"avg" ~associative:false ~commutative:true (fun a b ->
        Scalar.div (Scalar.add a b) (Scalar.F64 2.0))
  in
  let ds2 = Analyze.directive (matvec_like ~ops:[ Combine.cc; Combine.pw nonassoc ] ()) in
  check Alcotest.bool "no hint without a tree" true (find_code "MDH113" ds2 = None)

(* --- pragma-level diagnostics --- *)

let test_pragma_lex_and_parse_errors () =
  let lex = Analyze.pragma "#pragma mdh out(w : fp32) @" in
  (match lex with
  | [ d ] ->
    check Alcotest.string "lex code" "MDH017" d.Diag.code;
    check Alcotest.bool "lex span" true (d.Diag.span <> None)
  | _ -> Alcotest.fail "one lexical diagnostic expected");
  let parse = Analyze.pragma "#pragma mdh out(w : fp32)\nfor (i = 0; i < 4; i++) w[i] = 1.0;" in
  match parse with
  | [ d ] ->
    check Alcotest.string "parse code" "MDH016" d.Diag.code;
    check Alcotest.bool "parse span" true (d.Diag.span <> None)
  | _ -> Alcotest.fail "one syntax diagnostic expected"

(* --- the hints fixture: one pragma firing every hint code with its span --- *)

let test_hints_fixture_spans () =
  (* runtest runs in test/, `dune exec` in the workspace root: accept both *)
  let path =
    if Sys.file_exists "fixtures/hints.mdh" then "fixtures/hints.mdh"
    else "test/fixtures/hints.mdh"
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  let ds = Analyze.pragma src in
  check Alcotest.int "fixture errors" 0 (Diag.error_count ds);
  check Alcotest.int "fixture warnings" 0 (Diag.warning_count ds);
  check Alcotest.int "fixture hints" 6 (List.length ds);
  List.iter
    (fun (code, line, col) ->
      match find_code code ds with
      | None -> Alcotest.failf "%s expected on hints.mdh" code
      | Some d ->
        check Alcotest.bool
          (Printf.sprintf "%s span pinned at %d:%d" code line col)
          true
          (d.Diag.span = Some { Diag.line; col }))
    [ ("MDH110", 2, 1);   (* loop u: degenerate extent 1 *)
      ("MDH111", 1, 43);  (* b[k,u]: innermost index strided *)
      ("MDH112", 1, 77);  (* bor: unexploited commutativity *)
      ("MDH113", 1, 77);  (* 1-way cc vs 60-way tree reduction *)
      ("MDH120", 1, 17);  (* (a[k]+1)^2 CSE: flops 4 -> 3 *)
      ("MDH121", 1, 1) ]  (* int32 bor tree-balance 60 -> 32 *)

(* --- whole-catalogue cleanliness (mirrors scripts/check.sh's gate) --- *)

let test_catalogue_clean () =
  List.iter
    (fun (w : W.t) ->
      let ds = Analyze.directive (w.W.make w.W.test_params) in
      check Alcotest.int
        (w.W.wl_name ^ " errors")
        0 (Diag.error_count ds);
      check Alcotest.int
        (w.W.wl_name ^ " warnings")
        0 (Diag.warning_count ds))
    Mdh_workloads.Catalog.all

let suite =
  ( "analysis",
    [ Alcotest.test_case "accumulation ordering" `Quick test_accumulation_ordering;
      Alcotest.test_case "first error matches Validate" `Quick
        test_first_error_matches_validate;
      Alcotest.test_case "multi-error body" `Quick test_multi_error_body;
      Alcotest.test_case "out-view details" `Quick test_out_view_details;
      Alcotest.test_case "code table stable" `Quick test_code_table_stable;
      Alcotest.test_case "exit-code policy" `Quick test_exit_code_policy;
      Alcotest.test_case "sarif well-formed" `Quick test_sarif_wellformed;
      Alcotest.test_case "opcheck rejects false commutativity" `Quick
        test_opcheck_rejects_false_commutativity;
      Alcotest.test_case "opcheck rejects false associativity" `Quick
        test_opcheck_rejects_false_associativity;
      Alcotest.test_case "opcheck rejects false identity" `Quick
        test_opcheck_rejects_false_identity;
      Alcotest.test_case "opcheck reports unexploited properties" `Quick
        test_opcheck_unexploited;
      Alcotest.test_case "opcheck deterministic" `Quick test_opcheck_deterministic;
      Alcotest.test_case "misdeclared operator rejected" `Quick
        test_directive_rejects_misdeclared_operator;
      Alcotest.test_case "lint: unused input" `Quick test_lint_unused_input;
      Alcotest.test_case "lint: unparallelisable dims" `Quick
        test_lint_unparallelisable;
      Alcotest.test_case "lint: degenerate extent" `Quick test_lint_degenerate_extent;
      Alcotest.test_case "lint: locality" `Quick test_lint_locality;
      Alcotest.test_case "plan hint: reduction parallelism" `Quick
        test_plan_hint_reduction_parallelism;
      Alcotest.test_case "pragma lex/parse diagnostics" `Quick
        test_pragma_lex_and_parse_errors;
      Alcotest.test_case "hints fixture spans pinned" `Quick
        test_hints_fixture_spans;
      Alcotest.test_case "catalogue clean" `Quick test_catalogue_clean ] )
