(* Tests for the ATF auto-tuner: parameter spaces, search strategies,
   schedule tuning. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule
open Mdh_atf

let check = Alcotest.check

let cpu = Device.xeon6140_like

(* a small space with a genuine interdependence: y <= x *)
let dependent_space () =
  Space.make
    [ Param.independent "x" [ 1; 2; 3 ];
      Param.dependent "y" (fun config ->
          List.filter (fun v -> v <= Param.value config "x") [ 1; 2; 3 ]) ]

let test_enumerate_respects_constraints () =
  let configs = Space.enumerate (dependent_space ()) in
  check Alcotest.int "count" 6 (List.length configs);
  List.iter
    (fun c ->
      check Alcotest.bool "y <= x" true (Param.value c "y" <= Param.value c "x"))
    configs

let test_enumerate_cap () =
  let sp = Space.make [ Param.independent "x" (List.init 1000 Fun.id) ] in
  check Alcotest.int "capped" 10 (List.length (Space.enumerate ~cap:10 sp))

let test_duplicate_params_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Space.make: duplicate parameter names")
    (fun () -> ignore (Space.make [ Param.independent "x" [ 1 ]; Param.independent "x" [ 2 ] ]))

let test_sample_valid () =
  let sp = dependent_space () in
  let rng = Mdh_support.Rng.create 3 in
  for _ = 1 to 100 do
    match Space.sample sp rng with
    | None -> Alcotest.fail "dead end in a live space"
    | Some c -> check Alcotest.bool "valid" true (Param.value c "y" <= Param.value c "x")
  done

let test_sample_dead_end () =
  let sp =
    Space.make
      [ Param.independent "x" [ 1 ];
        Param.dependent "y" (fun _ -> []) ]
  in
  check Alcotest.bool "dead end" true (Space.sample sp (Mdh_support.Rng.create 1) = None)

let test_neighbour_stays_valid () =
  let sp = dependent_space () in
  let rng = Mdh_support.Rng.create 5 in
  let config = ref (Option.get (Space.sample sp rng)) in
  for _ = 1 to 200 do
    config := Space.neighbour sp rng !config;
    check Alcotest.bool "valid" true
      (Param.value !config "y" <= Param.value !config "x")
  done

(* quadratic bowl over the space: minimum at x=2,y=2 *)
let bowl config =
  let x = Param.value config "x" and y = Param.value config "y" in
  Some (float_of_int (((x - 2) * (x - 2)) + ((y - 2) * (y - 2))))

let test_exhaustive_finds_optimum () =
  match Search.exhaustive (dependent_space ()) ~cost:bowl with
  | None -> Alcotest.fail "no result"
  | Some r ->
    check (Alcotest.float 1e-9) "optimum" 0.0 r.Search.best_cost;
    check Alcotest.int "all evaluated" 6 r.Search.evaluations

let test_random_search_improves () =
  match Search.random_search (dependent_space ()) ~seed:7 ~budget:50 ~cost:bowl with
  | None -> Alcotest.fail "no result"
  | Some r ->
    check Alcotest.bool "found optimum in tiny space" true (r.Search.best_cost <= 1.0);
    check Alcotest.bool "trace monotone" true
      (let costs = List.map snd r.Search.trace in
       List.for_all2 (fun a b -> b <= a)
         (List.filteri (fun i _ -> i < List.length costs - 1) costs)
         (List.tl costs))

let test_annealing_finds_optimum () =
  match Search.simulated_annealing (dependent_space ()) ~seed:11 ~budget:100 ~cost:bowl with
  | None -> Alcotest.fail "no result"
  | Some r -> check (Alcotest.float 1e-9) "optimum" 0.0 r.Search.best_cost

let test_search_deterministic () =
  let run () =
    Option.get (Search.simulated_annealing (dependent_space ()) ~seed:13 ~budget:60 ~cost:bowl)
  in
  let a = run () and b = run () in
  check Alcotest.bool "same best" true (a.Search.best = b.Search.best);
  check Alcotest.int "same evals" a.Search.evaluations b.Search.evaluations

let test_search_skips_illegal () =
  let cost config = if Param.value config "x" = 2 then None else bowl config in
  match Search.exhaustive (dependent_space ()) ~cost with
  | None -> Alcotest.fail "no result"
  | Some r -> check Alcotest.bool "optimum avoids illegal" true (Param.value r.Search.best "x" <> 2)

let test_all_illegal_yields_none () =
  check Alcotest.bool "none" true
    (Search.exhaustive (dependent_space ()) ~cost:(fun _ -> None) = None)

(* --- tuning real workloads --- *)

let test_tune_improves_on_default () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matmul [ ("I", 1024); ("J", 1024); ("K", 1024) ] in
  let default_cost =
    match Cost.seconds md cpu Cost.tuned_codegen (Mdh_lowering.Lower.mdh_default md cpu) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Tuner.tune ~budget:200 md cpu Cost.tuned_codegen with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.bool "tuned <= default" true (t.Tuner.estimated_s <= default_cost);
    check Alcotest.bool "legal" true (Schedule.legal md cpu t.Tuner.schedule = Ok ())

let test_tune_parallelises_reduction_for_dot () =
  let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 1 lsl 24) ] in
  match Tuner.tune ~budget:100 md Device.a100_like Cost.tuned_codegen with
  | Error e -> Alcotest.fail e
  | Ok t ->
    (* the only way to use the GPU on dot is to parallelise the reduction *)
    check (Alcotest.list Alcotest.int) "reduction parallel" [ 0 ]
      t.Tuner.schedule.Schedule.parallel_dims

let test_tune_respects_parallel_options () =
  let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 65536) ] in
  match Tuner.tune ~parallel_options:[ [] ] ~budget:50 md cpu Cost.tuned_codegen with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check (Alcotest.list Alcotest.int) "restricted" []
      t.Tuner.schedule.Schedule.parallel_dims

let test_random_search_mostly_illegal_space () =
  (* only x = 3 admits a y, so ~2/3 of samples dead-end: the draw loop must
     stop at the 10x-budget attempt cap instead of spinning *)
  let sp =
    Space.make
      [ Param.independent "x" [ 1; 2; 3 ];
        Param.dependent "y" (fun config ->
            if Param.value config "x" = 3 then [ 0 ] else []) ]
  in
  let budget = 30 in
  match Search.random_search sp ~seed:5 ~budget ~cost:(fun _ -> Some 1.0) with
  | None -> Alcotest.fail "legal configurations exist"
  | Some r ->
    check Alcotest.bool "within budget" true (r.Search.evaluations <= budget);
    check Alcotest.bool "found some" true (r.Search.evaluations > 0);
    check Alcotest.int "x pinned" 3 (Param.value r.Search.best "x")

let test_random_search_all_dead_ends () =
  let sp =
    Space.make
      [ Param.independent "x" [ 1 ]; Param.dependent "y" (fun _ -> []) ]
  in
  check Alcotest.bool "terminates with none" true
    (Search.random_search sp ~seed:1 ~budget:20 ~cost:(fun _ -> Some 1.0) = None)

let test_annealing_all_neighbours_illegal () =
  (* once the chain finds the single legal configuration, every neighbour
     is rejected by the cost model: the walk must still consume its budget
     and terminate, reporting the legal point *)
  let sp = dependent_space () in
  let legal = [ ("x", 2); ("y", 1) ] in
  let cost config = if config = legal then Some 1.0 else None in
  match Search.simulated_annealing sp ~seed:2 ~budget:40 ~cost with
  | None -> Alcotest.fail "the legal configuration is reachable"
  | Some r ->
    check Alcotest.bool "best is the only legal point" true (r.Search.best = legal);
    check Alcotest.bool "budget consumed, then stopped" true (r.Search.evaluations >= 40)

let test_evaluate_batch_order_and_parity () =
  Mdh_runtime.Pool.with_pool ~num_domains:3 (fun pool ->
      let configs =
        Array.init 100 (fun i -> [ ("x", (i mod 3) + 1); ("y", 1) ])
      in
      let cost config =
        let x = Param.value config "x" in
        if x = 2 then None else Some (float_of_int x)
      in
      let seq = Search.evaluate_batch ~cost configs in
      let par = Search.evaluate_batch ~pool ~cost configs in
      check Alcotest.bool "parallel = sequential, in order" true (seq = par))

let test_portfolio_matches_sequential_and_sums_evals () =
  let seeds = [ 17; 18; 19; 20 ] in
  let run pool =
    Search.simulated_annealing_portfolio ?pool (dependent_space ()) ~seeds
      ~budget:25 ~cost:bowl
  in
  let seq = run None in
  Mdh_runtime.Pool.with_pool ~num_domains:3 (fun pool ->
      let par = run (Some pool) in
      match (seq, par) with
      | Some a, Some b ->
        check Alcotest.bool "same best" true (a.Search.best = b.Search.best);
        check (Alcotest.float 1e-12) "same cost" a.Search.best_cost b.Search.best_cost;
        check Alcotest.int "evals summed over chains" a.Search.evaluations
          b.Search.evaluations;
        check Alcotest.bool "all chains counted" true (a.Search.evaluations >= 25 * 4)
      | _ -> Alcotest.fail "portfolio found no result")

let test_tune_deterministic () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 4096); ("K", 4096) ] in
  let run () =
    match Tuner.tune ~budget:80 ~seed:3 md cpu Cost.tuned_codegen with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let a = run () and b = run () in
  check Alcotest.bool "same schedule" true (a.Tuner.schedule = b.Tuner.schedule)

let test_tune_parallel_matches_sequential_all_workloads () =
  (* the acceptance contract: for every catalogue workload, the parallel
     tuner (pool + multi-chain portfolio) picks the bit-identical schedule
     the sequential tuner picks for the same seed and chain count *)
  Mdh_runtime.Pool.with_pool ~num_domains:3 (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let tune pool =
            match
              Tuner.tune ~budget:120 ~seed:5 ~chains:3 ?pool md cpu
                Cost.tuned_codegen
            with
            | Ok t -> t
            | Error e -> Alcotest.failf "%s: %s" w.W.wl_name e
          in
          let seq = tune None and par = tune (Some pool) in
          check Alcotest.bool (w.W.wl_name ^ ": same schedule") true
            (seq.Tuner.schedule = par.Tuner.schedule);
          check (Alcotest.float 1e-12) (w.W.wl_name ^ ": same cost")
            seq.Tuner.estimated_s par.Tuner.estimated_s;
          check Alcotest.int (w.W.wl_name ^ ": same evaluations")
            seq.Tuner.search.Search.evaluations par.Tuner.search.Search.evaluations)
        Mdh_workloads.Catalog.all)

let with_temp_db f =
  let path = Filename.temp_file "mdh-tuning" ".db" in
  Sys.remove path;
  let db = Tuning_db.open_db path in
  Fun.protect ~finally:(fun () -> Tuning_db.clear db) (fun () -> f db)

let test_tuning_db_roundtrip () =
  with_temp_db (fun db ->
      let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 2048); ("K", 2048) ] in
      let tune db = Tuner.tune ~budget:60 ~seed:3 ~db md cpu Cost.tuned_codegen in
      let cold =
        match tune db with Ok t -> t | Error e -> Alcotest.fail e
      in
      check Alcotest.bool "cold run searches" false cold.Tuner.from_db;
      check Alcotest.bool "cold run evaluates" true
        (cold.Tuner.search.Search.evaluations > 0);
      let warm =
        match tune db with Ok t -> t | Error e -> Alcotest.fail e
      in
      check Alcotest.bool "warm run recalls" true warm.Tuner.from_db;
      check Alcotest.int "warm run: zero search evaluations" 0
        warm.Tuner.search.Search.evaluations;
      check Alcotest.bool "same schedule" true
        (cold.Tuner.schedule = warm.Tuner.schedule);
      check (Alcotest.float 1e-12) "same cost" cold.Tuner.estimated_s
        warm.Tuner.estimated_s;
      (* persistence: a fresh handle on the same file still recalls *)
      let reloaded =
        match
          tune
            (Tuning_db.open_db
               (Option.get (Tuning_db.path db)))
        with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      check Alcotest.bool "recalled across reload" true reloaded.Tuner.from_db;
      check Alcotest.bool "reloaded schedule identical" true
        (cold.Tuner.schedule = reloaded.Tuner.schedule))

let test_tuning_db_key_distinguishes_searches () =
  with_temp_db (fun db ->
      let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 1024); ("K", 1024) ] in
      (match Tuner.tune ~budget:50 ~seed:3 ~db md cpu Cost.tuned_codegen with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      (* a different seed/budget/device must not hit the stored entry *)
      List.iter
        (fun t ->
          check Alcotest.bool "distinct key misses" false
            (match t with Ok t -> t.Tuner.from_db | Error _ -> false))
        [ Tuner.tune ~budget:50 ~seed:4 ~db md cpu Cost.tuned_codegen;
          Tuner.tune ~budget:51 ~seed:3 ~db md cpu Cost.tuned_codegen;
          Tuner.tune ~budget:50 ~seed:3 ~db md Device.a100_like Cost.tuned_codegen ])

let test_tuning_db_tolerates_garbage () =
  let path = Filename.temp_file "mdh-tuning" ".db" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "not a db line\nkey\tnot-a-float\ttiles=1\n");
  let db = Tuning_db.open_db path in
  Fun.protect ~finally:(fun () -> Tuning_db.clear db) (fun () ->
      check Alcotest.int "garbage ignored" 0 (Tuning_db.size db);
      let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 65536) ] in
      match Tuner.tune ~budget:40 ~db md cpu Cost.tuned_codegen with
      | Ok t -> check Alcotest.bool "still tunes" false t.Tuner.from_db
      | Error e -> Alcotest.fail e)

(* regression: [Unix.lockf] is held per-process, so before the db's
   in-process io mutex, a store's O_APPEND write racing another domain's
   compact could land on the pre-rename inode and vanish. Hammer the
   same handle from several domains, with compactions interleaved, and
   require every entry to survive on disk. *)
let test_tuning_db_concurrent_writers_keep_entries () =
  with_temp_db (fun db ->
      let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 1024) ] in
      let sched = Schedule.sequential md in
      let n_domains = 4 and per_domain = 24 in
      let writer d () =
        for i = 0 to per_domain - 1 do
          Tuning_db.store db (Printf.sprintf "key-%d-%d" d i) sched
            (float_of_int ((d * per_domain) + i));
          if i mod 5 = 0 then Tuning_db.compact db
        done
      in
      let domains = List.init n_domains (fun d -> Domain.spawn (writer d)) in
      List.iter Domain.join domains;
      Tuning_db.compact db;
      let expected = n_domains * per_domain in
      check Alcotest.int "all entries in memory" expected (Tuning_db.size db);
      (* the real assertion: the *file* kept every line too *)
      let reloaded = Tuning_db.open_db (Option.get (Tuning_db.path db)) in
      check Alcotest.int "all entries survived on disk" expected
        (Tuning_db.size reloaded);
      List.iter
        (fun d ->
          for i = 0 to per_domain - 1 do
            let key = Printf.sprintf "key-%d-%d" d i in
            match Tuning_db.find reloaded key with
            | Some (_, cost) ->
              check (Alcotest.float 1e-12)
                (key ^ " cost")
                (float_of_int ((d * per_domain) + i))
                cost
            | None -> Alcotest.fail ("lost entry " ^ key)
          done)
        (List.init n_domains Fun.id))

let test_cost_cache_absorbs_repeat_tuning () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matmul [ ("I", 512); ("J", 512); ("K", 512) ] in
  let tune () =
    match Tuner.tune ~budget:80 ~seed:11 md cpu Cost.tuned_codegen with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Cost_cache.reset_stats ();
  let a = tune () in
  let cold = Cost_cache.stats () in
  check Alcotest.bool "cold run computes" true (cold.Cost_cache.n_misses > 0);
  let b = tune () in
  let warm = Cost_cache.stats () in
  check Alcotest.bool "repeat run is all hits" true
    (warm.Cost_cache.n_misses = cold.Cost_cache.n_misses);
  check Alcotest.bool "hits grew" true
    (warm.Cost_cache.n_hits > cold.Cost_cache.n_hits);
  check Alcotest.bool "cached runs agree" true (a.Tuner.schedule = b.Tuner.schedule)

let suite =
  let tc = Alcotest.test_case in
  ( "atf",
    [ tc "enumerate respects constraints" `Quick test_enumerate_respects_constraints;
      tc "enumerate cap" `Quick test_enumerate_cap;
      tc "duplicate params rejected" `Quick test_duplicate_params_rejected;
      tc "sample valid" `Quick test_sample_valid;
      tc "sample dead end" `Quick test_sample_dead_end;
      tc "neighbour stays valid" `Quick test_neighbour_stays_valid;
      tc "exhaustive optimum" `Quick test_exhaustive_finds_optimum;
      tc "random search improves" `Quick test_random_search_improves;
      tc "annealing optimum" `Quick test_annealing_finds_optimum;
      tc "search deterministic" `Quick test_search_deterministic;
      tc "search skips illegal" `Quick test_search_skips_illegal;
      tc "all illegal yields none" `Quick test_all_illegal_yields_none;
      tc "random search survives mostly-illegal space" `Quick
        test_random_search_mostly_illegal_space;
      tc "random search all dead ends" `Quick test_random_search_all_dead_ends;
      tc "annealing terminates with illegal neighbours" `Quick
        test_annealing_all_neighbours_illegal;
      tc "evaluate_batch parallel parity" `Quick test_evaluate_batch_order_and_parity;
      tc "annealing portfolio parallel parity" `Quick
        test_portfolio_matches_sequential_and_sums_evals;
      tc "tune improves on default" `Quick test_tune_improves_on_default;
      tc "tune parallelises dot reduction" `Quick test_tune_parallelises_reduction_for_dot;
      tc "tune respects parallel options" `Quick test_tune_respects_parallel_options;
      tc "tune deterministic" `Quick test_tune_deterministic;
      tc "parallel tuner = sequential tuner (all workloads)" `Quick
        test_tune_parallel_matches_sequential_all_workloads;
      tc "tuning db roundtrip" `Quick test_tuning_db_roundtrip;
      tc "tuning db key distinguishes searches" `Quick
        test_tuning_db_key_distinguishes_searches;
      tc "tuning db tolerates garbage" `Quick test_tuning_db_tolerates_garbage;
      tc "tuning db concurrent writers keep entries" `Quick
        test_tuning_db_concurrent_writers_keep_entries;
      tc "cost cache absorbs repeat tuning" `Quick
        test_cost_cache_absorbs_repeat_tuning ] )
