(* Unit and property tests for combine operators (cc, pw, ps). *)

module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
open Mdh_combine

let check = Alcotest.check

let i32_tensor xs = Dense.of_fn Scalar.Int32 [| Array.length xs |] (fun i -> Scalar.i32 xs.(i.(0)))

let test_names () =
  check Alcotest.string "cc" "cc" (Combine.name Combine.cc);
  check Alcotest.string "pw" "pw(add)" (Combine.name (Combine.pw (Combine.add Scalar.Fp32)));
  check Alcotest.string "ps" "ps(add)" (Combine.name (Combine.ps (Combine.add Scalar.Fp32)))

let test_classification () =
  check Alcotest.bool "cc not reduction" false (Combine.is_reduction Combine.cc);
  check Alcotest.bool "pw reduction" true
    (Combine.is_reduction (Combine.pw (Combine.add Scalar.Fp32)));
  check Alcotest.bool "ps reduction" true
    (Combine.is_reduction (Combine.ps (Combine.add Scalar.Fp32)));
  check Alcotest.bool "only pw collapses" true
    (Combine.collapses (Combine.pw (Combine.add Scalar.Fp32))
    && (not (Combine.collapses Combine.cc))
    && not (Combine.collapses (Combine.ps (Combine.add Scalar.Fp32))))

let test_result_extent () =
  check Alcotest.int "cc keeps" 7 (Combine.result_extent Combine.cc 7);
  check Alcotest.int "pw collapses" 1
    (Combine.result_extent (Combine.pw (Combine.add Scalar.Int32)) 7);
  check Alcotest.int "ps keeps" 7
    (Combine.result_extent (Combine.ps (Combine.add Scalar.Int32)) 7)

let test_parallelisable () =
  check Alcotest.bool "cc" true (Combine.parallelisable Combine.cc);
  check Alcotest.bool "pw add" true
    (Combine.parallelisable (Combine.pw (Combine.add Scalar.Fp32)));
  let non_assoc = Combine.custom ~name:"sub" ~associative:false Scalar.sub in
  check Alcotest.bool "non-assoc pw" false (Combine.parallelisable (Combine.pw non_assoc))

let test_builtin_flags () =
  check Alcotest.bool "add builtin" true (Combine.add Scalar.Fp32).Combine.builtin;
  let custom = Combine.custom ~name:"prl_max" (fun a _ -> a) in
  check Alcotest.bool "custom not builtin" false custom.Combine.builtin

let test_combine_cc () =
  let lhs = i32_tensor [| 1; 2 |] and rhs = i32_tensor [| 3 |] in
  let out = Combine.combine_partials Combine.cc ~dim:0 lhs rhs in
  check Test_util.dense "concat" (i32_tensor [| 1; 2; 3 |]) out

let test_combine_pw () =
  let lhs = i32_tensor [| 5 |] and rhs = i32_tensor [| 7 |] in
  let out =
    Combine.combine_partials (Combine.pw (Combine.add Scalar.Int32)) ~dim:0 lhs rhs
  in
  check Test_util.dense "sum" (i32_tensor [| 12 |]) out

let test_combine_pw_requires_collapsed () =
  let lhs = i32_tensor [| 1; 2 |] and rhs = i32_tensor [| 3; 4 |] in
  Alcotest.check_raises "extent"
    (Invalid_argument "Combine.combine_partials: pw operands must have extent 1")
    (fun () ->
      ignore
        (Combine.combine_partials (Combine.pw (Combine.add Scalar.Int32)) ~dim:0 lhs rhs))

let test_combine_ps () =
  (* scan([1;2;3;4]) split as [1;3] ++ [3+3; 3+7] = [1;3;6;10] *)
  let lhs = i32_tensor [| 1; 3 |] (* already scanned prefix *) in
  let rhs = i32_tensor [| 3; 7 |] (* scanned suffix, without carry *) in
  let out =
    Combine.combine_partials (Combine.ps (Combine.add Scalar.Int32)) ~dim:0 lhs rhs
  in
  check Test_util.dense "scan merge" (i32_tensor [| 1; 3; 6; 10 |]) out

let test_combine_ps_2d () =
  (* column scans merged along dim 0, with a second cc-like dim of width 2 *)
  let mk rows = Dense.of_fn Scalar.Int32 [| Array.length rows; 2 |]
      (fun i -> Scalar.i32 rows.(i.(0)).(i.(1)))
  in
  let lhs = mk [| [| 1; 10 |]; [| 3; 30 |] |] in
  let rhs = mk [| [| 5; 50 |] |] in
  let out =
    Combine.combine_partials (Combine.ps (Combine.add Scalar.Int32)) ~dim:0 lhs rhs
  in
  check Test_util.dense "carry per column" (mk [| [| 1; 10 |]; [| 3; 30 |]; [| 8; 80 |] |]) out

(* Property: for associative f, combine_partials over a split equals a direct
   fold/scan over the whole array. *)

let gen_split_array =
  QCheck2.Gen.(
    let* n = int_range 2 20 in
    let* cut = int_range 1 (n - 1) in
    let* xs = list_size (return n) (int_range (-50) 50) in
    return (Array.of_list xs, cut))

let prop_pw_split =
  QCheck2.Test.make ~name:"pw split law (add)" ~count:300 gen_split_array
    (fun (xs, cut) ->
      let f = Combine.add Scalar.Int32 in
      let fold lo hi =
        let acc = ref (Scalar.i32 xs.(lo)) in
        for i = lo + 1 to hi do acc := f.Combine.apply !acc (Scalar.i32 xs.(i)) done;
        Dense.of_fn Scalar.Int32 [| 1 |] (fun _ -> !acc)
      in
      let whole = fold 0 (Array.length xs - 1) in
      let merged =
        Combine.combine_partials (Combine.pw f) ~dim:0 (fold 0 (cut - 1))
          (fold cut (Array.length xs - 1))
      in
      Dense.equal whole merged)

let prop_ps_split =
  QCheck2.Test.make ~name:"ps split law (add)" ~count:300 gen_split_array
    (fun (xs, cut) ->
      let f = Combine.add Scalar.Int32 in
      let scan lo hi =
        let out = Array.make (hi - lo + 1) (Scalar.i32 0) in
        let acc = ref (Scalar.i32 xs.(lo)) in
        out.(0) <- !acc;
        for i = lo + 1 to hi do
          acc := f.Combine.apply !acc (Scalar.i32 xs.(i));
          out.(i - lo) <- !acc
        done;
        Dense.of_fn Scalar.Int32 [| Array.length out |] (fun i -> out.(i.(0)))
      in
      let whole = scan 0 (Array.length xs - 1) in
      let merged =
        Combine.combine_partials (Combine.ps f) ~dim:0 (scan 0 (cut - 1))
          (scan cut (Array.length xs - 1))
      in
      Dense.equal whole merged)

let prop_cc_assoc =
  QCheck2.Test.make ~name:"cc associativity" ~count:200
    QCheck2.Gen.(triple (list_size (int_range 1 5) (int_range 0 9))
                   (list_size (int_range 1 5) (int_range 0 9))
                   (list_size (int_range 1 5) (int_range 0 9)))
    (fun (a, b, c) ->
      let t xs = i32_tensor (Array.of_list xs) in
      let cc = Combine.combine_partials Combine.cc ~dim:0 in
      Dense.equal (cc (cc (t a) (t b)) (t c)) (cc (t a) (cc (t b) (t c))))

(* declared-associative operators really are associative *)
let prop_builtin_ops_associative =
  QCheck2.Test.make ~name:"builtin pw ops associative" ~count:500
    QCheck2.Gen.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
                   (int_range (-1000) 1000))
    (fun (a, b, c) ->
      List.for_all
        (fun (f : Combine.custom_fn) ->
          let v x = Scalar.i64 x in
          Scalar.equal
            (f.apply (f.apply (v a) (v b)) (v c))
            (f.apply (v a) (f.apply (v b) (v c))))
        [ Combine.add Scalar.Int64; Combine.mul Scalar.Int64;
          Combine.max Scalar.Int64; Combine.min Scalar.Int64 ])

let prop_identity_laws =
  QCheck2.Test.make ~name:"declared identities are identities" ~count:500
    QCheck2.Gen.(int_range (-1000) 1000)
    (fun x ->
      List.for_all
        (fun (f : Combine.custom_fn) ->
          match f.identity with
          | None -> true
          | Some e ->
            let v = Scalar.i64 x in
            Scalar.equal (f.apply e v) v && Scalar.equal (f.apply v e) v)
        [ Combine.add Scalar.Int64; Combine.mul Scalar.Int64 ])

(* Catalogue audit pin: every custom combine operator shipped in the workload
   catalogue must survive property verification with zero violations — the
   declared associativity/commutativity/identity flags are never falsified by
   the exhaustive+randomised evaluation in Mdh_analysis.Opcheck. *)
let test_catalogue_ops_verified () =
  let module Validate = Mdh_directive.Validate in
  let module Opcheck = Mdh_analysis.Opcheck in
  List.iter
    (fun (w : Mdh_workloads.Workload.t) ->
      let dir = w.make w.test_params in
      match Validate.elaborate dir with
      | Error e ->
        Alcotest.failf "catalogue workload %s no longer validates: %s" w.wl_name
          (Validate.error_to_string e)
      | Ok elab ->
        let ty =
          match elab.Validate.el_outs with
          | o :: _ -> o.Validate.eo_ty
          | [] -> Scalar.Fp32
        in
        Array.iter
          (fun op ->
            match op with
            | Combine.Cc -> ()
            | Combine.Pw fn | Combine.Ps fn ->
              let report = Opcheck.verify ~ty fn in
              (match Opcheck.violations fn report with
               | [] -> ()
               | (prop, witness) :: _ ->
                 Alcotest.failf "catalogue op %s (%s) mis-declares %s: %s"
                   fn.Combine.fn_name w.wl_name prop witness))
          elab.Validate.el_combine_ops)
    Mdh_workloads.Catalog.all

(* prl_best is declared fully associative+commutative (total order over all
   record fields); the verifier must confirm both, not merely fail to refute *)
let test_prl_best_verified () =
  let module Opcheck = Mdh_analysis.Opcheck in
  let fn = Mdh_workloads.Prl.prl_best in
  check Alcotest.bool "declared associative" true fn.Combine.associative;
  check Alcotest.bool "declared commutative" true fn.Combine.commutative;
  let report = Opcheck.verify ~ty:Mdh_workloads.Prl.match_record_ty fn in
  let verified = function Opcheck.Verified _ -> true | _ -> false in
  check Alcotest.bool "associativity verified" true (verified report.Opcheck.associativity);
  check Alcotest.bool "commutativity verified" true (verified report.Opcheck.commutativity);
  check Alcotest.(list (pair string string)) "no violations" []
    (Opcheck.violations fn report)

let suite =
  let tc = Alcotest.test_case in
  ( "combine",
    [ tc "names" `Quick test_names;
      tc "classification" `Quick test_classification;
      tc "result extent" `Quick test_result_extent;
      tc "parallelisable" `Quick test_parallelisable;
      tc "builtin flags" `Quick test_builtin_flags;
      tc "combine cc" `Quick test_combine_cc;
      tc "combine pw" `Quick test_combine_pw;
      tc "pw requires collapsed" `Quick test_combine_pw_requires_collapsed;
      tc "combine ps" `Quick test_combine_ps;
      tc "combine ps 2d" `Quick test_combine_ps_2d;
      tc "catalogue ops verified" `Quick test_catalogue_ops_verified;
      tc "prl_best verified" `Quick test_prl_best_verified;
      QCheck_alcotest.to_alcotest prop_pw_split;
      QCheck_alcotest.to_alcotest prop_ps_split;
      QCheck_alcotest.to_alcotest prop_cc_assoc;
      QCheck_alcotest.to_alcotest prop_builtin_ops_associative;
      QCheck_alcotest.to_alcotest prop_identity_laws ] )
