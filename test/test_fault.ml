(* Chaos and robustness tests: the deterministic fault-injection layer,
   crash-safe tuning-database recovery, checkpoint/resume bit-identity,
   and graceful pool degradation. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule
module Pool = Mdh_runtime.Pool
module Metrics = Mdh_obs.Metrics
module Fault = Mdh_fault.Fault
open Mdh_atf

let check = Alcotest.check

let cpu = Device.xeon6140_like

let with_faults spec f =
  (match Fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("bad fault spec: " ^ e));
  Fun.protect ~finally:Fault.disarm f

let with_tmp_dir f =
  let dir = Filename.temp_file "mdh_fault" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let counter_value name = Metrics.value (Metrics.counter name)

(* --- spec grammar --- *)

let test_parse_spec () =
  match
    Fault.parse "cost.eval:raise@40,db.write:truncate=5,pool.job:delay=250@1/2"
  with
  | Error e -> Alcotest.fail e
  | Ok [ a; b; c ] ->
    check Alcotest.string "site" "cost.eval" a.Fault.site;
    check Alcotest.bool "raise" true (a.Fault.action = Fault.Raise);
    check Alcotest.int "at" 40 a.Fault.at;
    check Alcotest.bool "one-shot" true (a.Fault.every = None);
    check Alcotest.bool "truncate" true (b.Fault.action = Fault.Truncate 5);
    check Alcotest.int "default hit index" 1 b.Fault.at;
    check Alcotest.bool "delay in seconds" true (c.Fault.action = Fault.Delay 0.25);
    check Alcotest.bool "repeats" true (c.Fault.every = Some 2)
  | Ok _ -> Alcotest.fail "wrong clause count"

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ spec)
      | Error _ -> ())
    [ "bogus.site:raise"; "cost.eval:explode"; "cost.eval:raise@x"; "cost.eval";
      ""; "cost.eval:raise@0"; "db.write:truncate" ]

(* trigger-syntax edge cases carry *named* diagnostics: scripts (and the
   cli_test.sh pin) rely on the operator seeing what was wrong, not just
   a rejection *)
let test_parse_error_diagnostics () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let expect spec fragment =
    match Fault.parse spec with
    | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ spec)
    | Error e ->
      if not (contains e fragment) then
        Alcotest.fail
          (Printf.sprintf "spec %S: diagnostic %S does not name %S" spec e
             fragment)
  in
  expect "cost.eval:raise@0" "bad hit index";
  expect "cost.eval:raise@-1" "bad hit index";
  expect "serve.read:raise@" "bad hit index";
  expect "cost.eval:raise@1/0" "bad repeat count";
  expect "serve.handle:delay=10/-2" "bad repeat count";
  expect "serve.reed:raise" "unknown site";
  expect "Serve.read:raise" "unknown site";
  (* the unknown-site diagnostic enumerates what IS known *)
  expect "nope:raise" "serve.handle"

let test_parse_serve_sites () =
  List.iter
    (fun site ->
      match Fault.parse (site ^ ":raise@2/3") with
      | Ok [ t ] ->
        check Alcotest.string "site" site t.Fault.site;
        check Alcotest.int "at" 2 t.Fault.at;
        check Alcotest.bool "every" true (t.Fault.every = Some 3)
      | Ok _ -> Alcotest.fail "wrong clause count"
      | Error e -> Alcotest.fail (site ^ ": " ^ e))
    [ "serve.accept"; "serve.read"; "serve.write"; "serve.handle" ]

let test_disarmed_noop () =
  Fault.disarm ();
  check Alcotest.bool "disarmed" false (Fault.armed ());
  Fault.hit "cost.eval";
  check Alcotest.string "mangle is identity" "payload"
    (Fault.mangle "db.write" "payload")

(* --- trigger semantics --- *)

let test_raise_at_exact_hit () =
  with_faults "cost.eval:raise@3" (fun () ->
      Fault.hit "cost.eval";
      Fault.hit "cost.eval";
      (try
         Fault.hit "cost.eval";
         Alcotest.fail "third hit did not inject"
       with Fault.Injected site -> check Alcotest.string "site" "cost.eval" site);
      (* one-shot: the fourth hit is clean *)
      Fault.hit "cost.eval")

let test_repeating_trigger () =
  with_faults "db.read:raise@2/2" (fun () ->
      let fired _ =
        try
          Fault.hit "db.read";
          false
        with Fault.Injected _ -> true
      in
      check
        (Alcotest.list Alcotest.bool)
        "fires on hits 2, 4, 6"
        [ false; true; false; true; false; true ]
        (List.init 6 fired))

let test_mangle_truncate () =
  with_faults "db.write:truncate=5" (fun () ->
      check Alcotest.string "torn payload" "01234"
        (Fault.mangle "db.write" "0123456789");
      check Alcotest.string "one-shot" "0123456789"
        (Fault.mangle "db.write" "0123456789"))

let test_mangle_corrupt_deterministic () =
  let mangled () =
    with_faults "db.write:corrupt=42" (fun () ->
        Fault.mangle "db.write" "hello world")
  in
  let a = mangled () and b = mangled () in
  check Alcotest.string "seeded flip is reproducible" a b;
  check Alcotest.bool "payload changed" true (a <> "hello world");
  check Alcotest.int "length preserved" (String.length "hello world")
    (String.length a)

let test_injection_metrics () =
  let before = counter_value "fault.injected" in
  let site_before = counter_value "fault.injected.cost.eval" in
  with_faults "cost.eval:raise@1" (fun () ->
      try Fault.hit "cost.eval" with Fault.Injected _ -> ());
  check Alcotest.int "fault.injected counted" (before + 1)
    (counter_value "fault.injected");
  check Alcotest.int "per-site counter" (site_before + 1)
    (counter_value "fault.injected.cost.eval")

(* --- pool chaos: worker death and watchdog degradation --- *)

let test_pool_survives_worker_raise () =
  with_faults "pool.job:raise@1" (fun () ->
      Pool.with_pool ~num_domains:2 (fun pool ->
          let results = Array.make 64 0 in
          Pool.parallel_for pool ~lo:0 ~hi:64 (fun i -> results.(i) <- i + 1);
          Array.iteri
            (fun i v -> check Alcotest.int "every index ran" (i + 1) v)
            results))

let test_watchdog_degrades_pool () =
  let before = counter_value "runtime.pool.degraded" in
  with_faults "pool.job:delay=200" (fun () ->
      Pool.with_pool ~num_domains:2 ~watchdog_s:0.05 (fun pool ->
          (match Pool.parallel_for pool ~lo:0 ~hi:8 (fun _ -> ()) with
          | () -> Alcotest.fail "watchdog did not fire"
          | exception Pool.Watchdog_timeout -> ());
          check Alcotest.bool "pool degraded" true (Pool.degraded pool);
          check Alcotest.bool "degradation counted" true
            (counter_value "runtime.pool.degraded" > before);
          (* later jobs complete sequentially in the caller *)
          let ran = Atomic.make 0 in
          Pool.parallel_for pool ~lo:0 ~hi:16 (fun _ -> Atomic.incr ran);
          check Alcotest.int "degraded job ran to completion" 16 (Atomic.get ran)))

let test_search_degrades_to_sequential_identically () =
  let space = Space.make [ Param.independent "x" (List.init 32 Fun.id) ] in
  let cost config =
    Fault.hit "cost.eval";
    Some (float_of_int ((Param.value config "x" * 7) mod 13))
  in
  let reference = Search.random_search space ~seed:11 ~budget:24 ~cost in
  let before = counter_value "runtime.pool.degraded" in
  let faulted =
    with_faults "cost.eval:raise@10" (fun () ->
        Pool.with_pool ~num_domains:2 (fun pool ->
            Search.random_search ~pool space ~seed:11 ~budget:24 ~cost))
  in
  check Alcotest.bool "fan-out failure counted" true
    (counter_value "runtime.pool.degraded" > before);
  check Alcotest.bool "sequential retry matches fault-free result" true
    (reference = faulted)

(* --- tuning database: corruption, quarantine, degradation --- *)

let sched tiles par =
  { Schedule.tile_sizes = tiles; parallel_dims = par; used_layers = [ 0 ] }

let test_tuning_db_quarantine_and_rebuild () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "tuning.db" in
      let db = Tuning_db.open_db path in
      Tuning_db.store db "k1" (sched [| 4; 8 |] [ 0 ]) 1.5;
      Tuning_db.store db "k2" (sched [| 2; 2 |] [ 0; 1 ]) 2.5;
      (* bit-rot and a torn append, straight onto the file *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "garbage without structure\n";
      output_string oc "k3\t0.5\tnot a schedule\tdeadbeef\n";
      close_out oc;
      let before = counter_value "atf.tuning_db.corrupt_lines" in
      let quarantined_before = counter_value "atf.tuning_db.quarantined" in
      let db2 = Tuning_db.open_db path in
      check Alcotest.int "valid entries survive" 2 (Tuning_db.size db2);
      check Alcotest.bool "k1 recalled" true (Tuning_db.find db2 "k1" <> None);
      check Alcotest.int "corrupt lines counted" (before + 2)
        (counter_value "atf.tuning_db.corrupt_lines");
      check Alcotest.int "quarantine counted" (quarantined_before + 1)
        (counter_value "atf.tuning_db.quarantined");
      check Alcotest.bool "damaged file kept as evidence" true
        (Sys.file_exists (path ^ ".corrupt"));
      (* the rebuilt file is clean: reloading drops nothing further *)
      let db3 = Tuning_db.open_db path in
      check Alcotest.int "rebuilt file loads clean" 2 (Tuning_db.size db3);
      check Alcotest.int "no further corruption" (before + 2)
        (counter_value "atf.tuning_db.corrupt_lines"))

let test_injected_torn_write_recovers () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "tuning.db" in
      with_faults "db.write:truncate=10@2" (fun () ->
          let db = Tuning_db.open_db path in
          Tuning_db.store db "k1" (sched [| 4 |] [ 0 ]) 1.0;
          Tuning_db.store db "k2" (sched [| 8 |] [ 0 ]) 2.0);
      let db = Tuning_db.open_db path in
      check Alcotest.int "torn entry dropped, first survives" 1
        (Tuning_db.size db);
      check Alcotest.bool "k1 intact" true (Tuning_db.find db "k1" <> None);
      check Alcotest.bool "torn file quarantined" true
        (Sys.file_exists (path ^ ".corrupt")))

let test_injected_unreadable_db () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "tuning.db" in
      let db = Tuning_db.open_db path in
      Tuning_db.store db "k1" (sched [| 4 |] [ 0 ]) 1.0;
      let db2 =
        with_faults "db.read:raise@1" (fun () -> Tuning_db.open_db path)
      in
      check Alcotest.int "unreadable file degrades to empty" 0
        (Tuning_db.size db2);
      let db3 = Tuning_db.open_db path in
      check Alcotest.int "file untouched on disk" 1 (Tuning_db.size db3))

let test_injected_rename_during_compact () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "tuning.db" in
      let db = Tuning_db.open_db path in
      Tuning_db.store db "k1" (sched [| 4 |] [ 0 ]) 1.0;
      with_faults "db.rename:raise@1" (fun () -> Tuning_db.compact db);
      let db2 = Tuning_db.open_db path in
      check Alcotest.int "entries survive a failed compaction" 1
        (Tuning_db.size db2))

let test_unwritable_path_degrades_to_memory () =
  with_tmp_dir (fun dir ->
      let blocker = Filename.concat dir "blocker" in
      Out_channel.with_open_bin blocker (fun oc ->
          Out_channel.output_string oc "x");
      (* a path under a regular file: every open fails with ENOTDIR *)
      let path = Filename.concat blocker "tuning.db" in
      let before = counter_value "atf.tuning_db.memory_only" in
      let db = Tuning_db.open_db path in
      Tuning_db.store db "k1" (sched [| 4 |] [ 0 ]) 1.0;
      check Alcotest.bool "persistence disabled" false (Tuning_db.persistent db);
      check Alcotest.bool "entry still served from memory" true
        (Tuning_db.find db "k1" <> None);
      check Alcotest.bool "degradation counted" true
        (counter_value "atf.tuning_db.memory_only" > before))

let test_default_path_fallbacks () =
  let vars = [ "MDH_TUNING_DB"; "XDG_CACHE_HOME"; "HOME" ] in
  let saved = List.map (fun v -> (v, Sys.getenv_opt v)) vars in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (v, value) -> Unix.putenv v (Option.value value ~default:""))
        saved)
    (fun () ->
      List.iter (fun v -> Unix.putenv v "") vars;
      check Alcotest.bool "no cache root at all -> None (never the cwd)" true
        (Tuning_db.default_path () = None);
      Unix.putenv "HOME" "/nonexistent-home";
      check
        (Alcotest.option Alcotest.string)
        "HOME fallback"
        (Some "/nonexistent-home/.cache/mdh/tuning.db")
        (Tuning_db.default_path ());
      Unix.putenv "MDH_TUNING_DB" "/tmp/explicit.db";
      check
        (Alcotest.option Alcotest.string)
        "MDH_TUNING_DB wins" (Some "/tmp/explicit.db")
        (Tuning_db.default_path ()))

(* --- checkpoint/resume: bit-identical continuation --- *)

let tune_once ?(seed = 5) ?should_stop ?resume ?checkpoint md =
  Tuner.tune_resumable ~strategy:Tuner.Anneal ~budget:90 ~seed ~chains:2
    ~checkpoint_every:8 ?should_stop ?resume ?checkpoint
    ~db:(Tuning_db.in_memory ()) md cpu Cost.tuned_codegen

let stop_after k =
  let n = ref 0 in
  fun () ->
    incr n;
    !n > k

let reference_tuning ?seed name md =
  match tune_once ?seed md with
  | Ok (Tuner.Tuned t) -> t
  | Ok (Tuner.Suspended _) ->
    Alcotest.fail (name ^ ": uninterrupted run suspended")
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let suspend_to name ckpt md =
  match tune_once ~should_stop:(stop_after 25) ~checkpoint:ckpt md with
  | Ok (Tuner.Suspended { checkpoint; evaluations }) ->
    check Alcotest.string (name ^ ": checkpoint path") ckpt checkpoint;
    check Alcotest.bool (name ^ ": partial work recorded") true (evaluations > 0);
    check Alcotest.bool (name ^ ": checkpoint on disk") true
      (Sys.file_exists ckpt)
  | Ok (Tuner.Tuned _) -> Alcotest.fail (name ^ ": search did not suspend")
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let check_matches_reference name (reference : Tuner.tuning)
    (resumed : Tuner.tuning) =
  check Alcotest.bool (name ^ ": schedule bit-identical") true
    (reference.Tuner.schedule = resumed.Tuner.schedule);
  check (Alcotest.float 0.0) (name ^ ": estimated cost identical")
    reference.Tuner.estimated_s resumed.Tuner.estimated_s;
  check Alcotest.int (name ^ ": evaluation count identical")
    reference.Tuner.search.Search.evaluations
    resumed.Tuner.search.Search.evaluations;
  check Alcotest.bool (name ^ ": improvement trace identical") true
    (reference.Tuner.search.Search.trace = resumed.Tuner.search.Search.trace)

(* the headline robustness contract: on every catalogue workload, a tune
   suspended mid-anneal and resumed in a fresh search reproduces the
   uninterrupted run bit for bit *)
let test_resume_bit_identity_across_catalogue () =
  with_tmp_dir (fun dir ->
      List.iter
        (fun (w : W.t) ->
          let name = w.W.wl_name in
          let md = W.to_md_hom w w.W.test_params in
          let reference = reference_tuning name md in
          let ckpt = Filename.concat dir (name ^ ".ckpt") in
          let writes_before = counter_value "atf.checkpoint.writes" in
          suspend_to name ckpt md;
          check Alcotest.bool (name ^ ": periodic checkpoints written") true
            (counter_value "atf.checkpoint.writes" > writes_before);
          let resumes_before = counter_value "atf.checkpoint.resumes" in
          let resumed =
            match tune_once ~resume:true ~checkpoint:ckpt md with
            | Ok (Tuner.Tuned t) -> t
            | Ok (Tuner.Suspended _) ->
              Alcotest.fail (name ^ ": resume suspended again")
            | Error e -> Alcotest.fail (name ^ ": " ^ e)
          in
          check Alcotest.int (name ^ ": resume counted") (resumes_before + 1)
            (counter_value "atf.checkpoint.resumes");
          check_matches_reference name reference resumed;
          check Alcotest.bool (name ^ ": checkpoint deleted on completion")
            false (Sys.file_exists ckpt))
        Mdh_workloads.Catalog.all)

(* an injected persistent fault kills the tune mid-search (the crash
   case); the checkpoint left behind resumes to the identical result *)
let test_injected_crash_then_resume () =
  with_tmp_dir (fun dir ->
      let w = List.hd Mdh_workloads.Catalog.all in
      let name = w.W.wl_name in
      let md = W.to_md_hom w w.W.test_params in
      let reference = reference_tuning name md in
      let ckpt = Filename.concat dir "crash.ckpt" in
      (match
         with_faults "cost.eval:raise@30/1" (fun () ->
             tune_once ~checkpoint:ckpt ~should_stop:(fun () -> false) md)
       with
      | exception Fault.Injected _ -> ()
      | Ok _ | Error _ -> Alcotest.fail "persistent fault did not crash the tune");
      check Alcotest.bool "crash left a checkpoint" true (Sys.file_exists ckpt);
      let resumed =
        match tune_once ~resume:true ~checkpoint:ckpt md with
        | Ok (Tuner.Tuned t) -> t
        | Ok (Tuner.Suspended _) | Error _ ->
          Alcotest.fail "resume after crash failed"
      in
      check_matches_reference "crash-resume" reference resumed)

let test_corrupt_checkpoint_starts_fresh () =
  with_tmp_dir (fun dir ->
      let w = List.hd Mdh_workloads.Catalog.all in
      let name = w.W.wl_name in
      let md = W.to_md_hom w w.W.test_params in
      let reference = reference_tuning name md in
      let ckpt = Filename.concat dir "bad.ckpt" in
      suspend_to name ckpt md;
      Out_channel.with_open_bin ckpt (fun oc ->
          Out_channel.output_string oc "garbage\nmore garbage\n");
      let before = counter_value "atf.checkpoint.corrupt" in
      let resumed =
        match tune_once ~resume:true ~checkpoint:ckpt md with
        | Ok (Tuner.Tuned t) -> t
        | Ok (Tuner.Suspended _) | Error _ ->
          Alcotest.fail "corrupt checkpoint aborted the tune"
      in
      check Alcotest.int "corruption counted" (before + 1)
        (counter_value "atf.checkpoint.corrupt");
      (* a fresh start IS the uninterrupted run *)
      check_matches_reference "fresh-after-corrupt" reference resumed)

let test_stale_checkpoint_ignored () =
  with_tmp_dir (fun dir ->
      let w = List.hd Mdh_workloads.Catalog.all in
      let name = w.W.wl_name in
      let md = W.to_md_hom w w.W.test_params in
      let ckpt = Filename.concat dir "stale.ckpt" in
      suspend_to name ckpt md;
      (* same checkpoint path, different request (seed): the key mismatch
         must be detected and the checkpoint ignored, not misapplied *)
      let reference = reference_tuning ~seed:6 name md in
      let resumed =
        match tune_once ~seed:6 ~resume:true ~checkpoint:ckpt md with
        | Ok (Tuner.Tuned t) -> t
        | Ok (Tuner.Suspended _) | Error _ ->
          Alcotest.fail "stale checkpoint aborted the tune"
      in
      check_matches_reference "stale-ignored" reference resumed)

let suite =
  ( "fault",
    [ Alcotest.test_case "spec: parse round-trip" `Quick test_parse_spec;
      Alcotest.test_case "spec: bad specs rejected" `Quick test_parse_errors;
      Alcotest.test_case "spec: edge cases carry named diagnostics" `Quick
        test_parse_error_diagnostics;
      Alcotest.test_case "spec: serve.* sites parse" `Quick
        test_parse_serve_sites;
      Alcotest.test_case "disarmed hooks are no-ops" `Quick test_disarmed_noop;
      Alcotest.test_case "raise fires at exact hit" `Quick test_raise_at_exact_hit;
      Alcotest.test_case "repeating trigger" `Quick test_repeating_trigger;
      Alcotest.test_case "truncate mangles payload" `Quick test_mangle_truncate;
      Alcotest.test_case "corrupt is seeded-deterministic" `Quick
        test_mangle_corrupt_deterministic;
      Alcotest.test_case "injections are counted" `Quick test_injection_metrics;
      Alcotest.test_case "pool survives a worker raise" `Quick
        test_pool_survives_worker_raise;
      Alcotest.test_case "watchdog degrades the pool" `Quick
        test_watchdog_degrades_pool;
      Alcotest.test_case "search degrades sequentially, identically" `Quick
        test_search_degrades_to_sequential_identically;
      Alcotest.test_case "tuning db: quarantine and rebuild" `Quick
        test_tuning_db_quarantine_and_rebuild;
      Alcotest.test_case "tuning db: injected torn write" `Quick
        test_injected_torn_write_recovers;
      Alcotest.test_case "tuning db: injected unreadable file" `Quick
        test_injected_unreadable_db;
      Alcotest.test_case "tuning db: injected rename failure" `Quick
        test_injected_rename_during_compact;
      Alcotest.test_case "tuning db: unwritable path degrades" `Quick
        test_unwritable_path_degrades_to_memory;
      Alcotest.test_case "tuning db: default path fallbacks" `Quick
        test_default_path_fallbacks;
      Alcotest.test_case "resume bit-identity across catalogue" `Quick
        test_resume_bit_identity_across_catalogue;
      Alcotest.test_case "injected crash then resume" `Quick
        test_injected_crash_then_resume;
      Alcotest.test_case "corrupt checkpoint starts fresh" `Quick
        test_corrupt_checkpoint_starts_fresh;
      Alcotest.test_case "stale checkpoint ignored" `Quick
        test_stale_checkpoint_ignored ] )
