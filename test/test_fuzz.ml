(* Differential fuzzing: random *valid* directives over int32 buffers
   (exact arithmetic — no float tolerance), checked across every execution
   path in the repository:

     reference semantics  ==  in-place exec  ==  tiled evaluation
       ==  schedule-driven simulation  ==  parallel host execution

   and, where supported, kernel generation must succeed. This is the
   strongest guarantee the reproduction offers: any schedule and any
   executor agree with the definitional MDH semantics on arbitrary
   computations, not just the catalogue. *)

module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Rng = Mdh_support.Rng

(* --- generator --- *)

type sample = {
  dir : D.t;
  extents : int array;
  input_names : string list;
  tile_sizes : int array;
  seed : int;
}

let dim_names = [| "i"; "j"; "k" |]

let gen_sample rng =
  let rank = Rng.int_in rng 1 3 in
  let extents = Array.init rank (fun _ -> Rng.int_in rng 1 5) in
  (* combine ops: all pw dims share one commutative builtin; ps uses add *)
  let pw_fn =
    if Rng.bool rng then Combine.add Scalar.Int32 else Combine.max Scalar.Int32
  in
  let ops =
    Array.init rank (fun _ ->
        match Rng.int rng 4 with
        | 0 | 1 -> Combine.cc
        | 2 -> Combine.pw pw_fn
        | _ -> Combine.ps (Combine.add Scalar.Int32))
  in
  (* at least the fuzz stays in exec's supported territory: mixing ps and
     pw is legal for the evaluators, so keep it *)
  let kept_dims =
    List.filter (fun d -> not (Combine.collapses ops.(d))) (List.init rank Fun.id)
  in
  (* out view: the kept dims, possibly reversed (a permutation) *)
  let out_dims = if Rng.bool rng then kept_dims else List.rev kept_dims in
  let out_indices =
    if out_dims = [] then [ Expr.int 0 ]
    else List.map (fun d -> Expr.idx dim_names.(d)) out_dims
  in
  (* inputs: 1-2 buffers, 1-2 affine accesses each *)
  let n_inputs = Rng.int_in rng 1 2 in
  let input_names = List.init n_inputs (fun b -> Printf.sprintf "in%d" b) in
  let access _rng =
    (* 1-2 coordinates, each an affine combination of dims *)
    let n_coords = Rng.int_in rng 1 (max 1 rank) in
    List.init n_coords (fun _ ->
        let base = Expr.int (Rng.int rng 2) in
        List.fold_left
          (fun acc d ->
            match Rng.int rng 3 with
            | 0 -> acc
            | 1 -> Expr.(acc + idx dim_names.(d))
            | _ -> Expr.(acc + (int 2 * idx dim_names.(d))))
          base (List.init rank Fun.id))
  in
  let reads =
    List.concat_map
      (fun name ->
        List.init (Rng.int_in rng 1 2) (fun _ -> Expr.read name (access rng)))
      input_names
  in
  (* value: fold the reads with + and *, plus a constant *)
  let value =
    List.fold_left
      (fun acc r -> if Rng.bool rng then Expr.(acc + r) else Expr.(acc * r))
      (Expr.int (Rng.int_in rng (-3) 3))
      reads
  in
  let nest =
    List.fold_right
      (fun d acc -> D.for_ dim_names.(d) extents.(d) acc)
      (List.init rank Fun.id)
      (D.body [ D.assign "out" out_indices value ])
  in
  let dir =
    D.make ~name:"fuzz"
      ~out:[ D.buffer "out" Scalar.Int32 ]
      ~inp:(List.map (fun n -> D.buffer n Scalar.Int32) input_names)
      ~combine_ops:(Array.to_list ops) nest
  in
  let tile_sizes = Array.init rank (fun d -> Rng.int_in rng 1 (extents.(d) + 2)) in
  { dir; extents; input_names; tile_sizes; seed = Rng.int rng 1_000_000 }

let gen_env sample md =
  let rng = Rng.create sample.seed in
  Buffer.env_of_list
    (List.map
       (fun (i : Md_hom.input) ->
         Buffer.of_dense i.Md_hom.inp_name
           (Dense.of_fn Scalar.Int32 i.Md_hom.inp_shape (fun _ ->
                Scalar.i32 (Rng.int_in rng (-10) 10))))
       md.Md_hom.inputs)

(* the generator can produce invalid directives (e.g. an out view that
   repeats a dimension after collapse, or an empty-keep view colliding) —
   those must be *cleanly rejected*, never crash *)
let transform sample =
  match Mdh_directive.Transform.to_md_hom sample.dir with
  | Ok md -> Some md
  | Error _ -> None

let out_tensor env = Buffer.data (Buffer.env_find env "out")

let qcheck_sample =
  QCheck2.Gen.map
    (fun seed -> (seed, gen_sample (Rng.create seed)))
    QCheck2.Gen.(int_range 0 1_000_000_000)

let prop_cross_evaluator =
  QCheck2.Test.make ~name:"fuzz: reference == exec == tiled" ~count:400 qcheck_sample
    (fun (_, sample) ->
      match transform sample with
      | None -> true
      | Some md ->
        let env = gen_env sample md in
        let reference = out_tensor (Semantics.reference md env) in
        let exec = out_tensor (Semantics.exec md env) in
        let tiled =
          out_tensor (Semantics.eval_tiled md env ~tile_sizes:sample.tile_sizes)
        in
        Dense.equal reference exec && Dense.equal reference tiled)

let prop_simulation_matches =
  QCheck2.Test.make ~name:"fuzz: schedule-driven simulation == reference" ~count:150
    qcheck_sample
    (fun (_, sample) ->
      match transform sample with
      | None -> true
      | Some md ->
        let env = gen_env sample md in
        let reference = out_tensor (Semantics.reference md env) in
        List.for_all
          (fun dev ->
            let sched = Mdh_lowering.Lower.mdh_default md dev in
            match
              Mdh_lowering.Simulate.run md dev Mdh_lowering.Cost.tuned_codegen sched env
            with
            | Error _ -> false
            | Ok r -> Dense.equal reference (out_tensor r.Mdh_lowering.Simulate.env))
          [ Mdh_machine.Device.a100_like; Mdh_machine.Device.xeon6140_like ])

let prop_parallel_exec_matches =
  QCheck2.Test.make ~name:"fuzz: parallel host execution == reference" ~count:100
    qcheck_sample
    (fun (_, sample) ->
      match transform sample with
      | None -> true
      | Some md ->
        let env = gen_env sample md in
        let reference = out_tensor (Semantics.reference md env) in
        Mdh_runtime.Pool.with_pool ~num_domains:2 (fun pool ->
            let sched =
              { (Mdh_lowering.Schedule.sequential md) with
                Mdh_lowering.Schedule.parallel_dims =
                  Mdh_lowering.Lower.parallelisable_dims md }
            in
            match Mdh_runtime.Exec.run pool md sched env with
            | Error _ -> false
            | Ok got -> Dense.equal reference (out_tensor got)))

let prop_tuned_schedule_still_correct =
  QCheck2.Test.make ~name:"fuzz: auto-tuned schedule computes the reference" ~count:60
    qcheck_sample
    (fun (_, sample) ->
      match transform sample with
      | None -> true
      | Some md ->
        let env = gen_env sample md in
        let reference = out_tensor (Semantics.reference md env) in
        (match
           Mdh_atf.Tuner.tune ~budget:40 md Mdh_machine.Device.xeon6140_like
             Mdh_lowering.Cost.tuned_codegen
         with
        | Error _ -> false
        | Ok t ->
          let tiles =
            (Mdh_lowering.Schedule.clamp md t.Mdh_atf.Tuner.schedule)
              .Mdh_lowering.Schedule.tile_sizes
          in
          Dense.equal reference
            (out_tensor (Semantics.eval_tiled md env ~tile_sizes:tiles))))

let prop_codegen_total =
  QCheck2.Test.make ~name:"fuzz: codegen succeeds or fails cleanly" ~count:150
    qcheck_sample
    (fun (_, sample) ->
      match transform sample with
      | None -> true
      | Some md ->
        List.for_all
          (fun (dialect, dev) ->
            let sched = Mdh_lowering.Lower.mdh_default md dev in
            match Mdh_codegen.Kernel.generate dialect md dev sched with
            | Ok src -> String.length src > 0
            | Error (Mdh_codegen.Kernel.Unsupported _) -> true
            | Error (Mdh_codegen.Kernel.Illegal_schedule _) -> false)
          [ (Mdh_codegen.Kernel.cuda, Mdh_machine.Device.a100_like);
            (Mdh_codegen.Kernel.opencl, Mdh_machine.Device.xeon6140_like) ])

let prop_validation_total =
  (* validation itself must never raise on generator output *)
  QCheck2.Test.make ~name:"fuzz: validation is total" ~count:500 qcheck_sample
    (fun (_, sample) ->
      match Mdh_directive.Validate.run sample.dir with Ok () | Error _ -> true)

let prop_analyzer_agrees_with_validate =
  (* the accumulating analyzer and the fail-fast validator must agree:
     an analysis without error-severity diagnostics means Validate.check
     passes, and a Validate failure means the analyzer reports it — with
     the validator's own code first (generator operators are honestly
     declared builtins, so operator verification cannot diverge) *)
  QCheck2.Test.make ~name:"fuzz: analyzer agrees with Validate.check" ~count:300
    qcheck_sample
    (fun (_, sample) ->
      let module Diag = Mdh_analysis.Diagnostic in
      let ds = Mdh_analysis.Analyze.directive sample.dir in
      let first_error =
        List.find_opt (fun d -> d.Diag.severity = Diag.Error) ds
      in
      match (Mdh_directive.Validate.check sample.dir, first_error) with
      | Ok (), None -> true
      | Ok (), Some _ -> false
      | Error _, None -> false
      | Error e, Some d ->
        String.equal (Mdh_directive.Validate.error_code e.Mdh_directive.Validate.kind)
          d.Diag.code)

(* --- record-typed computations with a custom combine operator (the PRL
   shape): two int32 fields, reduced with an associative lexicographic-max
   operator --- *)

let pair_ty = Scalar.Record [ ("a", Scalar.Int32); ("b", Scalar.Int32) ]

let lex_max =
  Combine.custom ~name:"lex_max" ~associative:true (fun lhs rhs ->
      let a v = Scalar.to_int (Scalar.field v "a") in
      let b v = Scalar.to_int (Scalar.field v "b") in
      if a lhs > a rhs then lhs
      else if a lhs < a rhs then rhs
      else if b lhs >= b rhs then lhs
      else rhs)

let gen_record_sample rng =
  let n = Rng.int_in rng 1 6 and m = Rng.int_in rng 1 6 in
  let value =
    (* a = a score over both record fields; b = a tag derived from indices *)
    Expr.MkRecord
      [ ("a",
         Expr.(
           field (read "db" [ idx "i"; idx "j" ]) "a"
           + (int (Rng.int_in rng 1 3) * field (read "db" [ idx "i"; idx "j" ]) "b")));
        ("b", Expr.((int 10 * idx "i") + idx "j")) ]
  in
  let dir =
    D.make ~name:"record_fuzz"
      ~out:[ D.buffer "best" pair_ty ]
      ~inp:[ D.buffer "db" pair_ty ]
      ~combine_ops:[ Combine.cc; Combine.pw lex_max ]
      (D.for_ "i" n
         (D.for_ "j" m (D.body [ D.assign "best" [ Expr.idx "i" ] value ])))
  in
  let tiles = [| Rng.int_in rng 1 (n + 1); Rng.int_in rng 1 (m + 1) |] in
  (dir, n, m, tiles, Rng.int rng 1_000_000)

let out_tensor_named md env name evaluator =
  Buffer.data (Buffer.env_find (evaluator md env) name)

let prop_record_cross_evaluator =
  QCheck2.Test.make ~name:"fuzz: record types across evaluators" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let dir, n, m, tiles, data_seed = gen_record_sample rng in
      match Mdh_directive.Transform.to_md_hom dir with
      | Error _ -> false (* this family is always valid *)
      | Ok md ->
        let data_rng = Rng.create data_seed in
        let env =
          Buffer.env_of_list
            [ Buffer.of_dense "db"
                (Dense.of_fn pair_ty [| n; m |] (fun _ ->
                     Scalar.R
                       [ ("a", Scalar.i32 (Rng.int_in data_rng (-9) 9));
                         ("b", Scalar.i32 (Rng.int_in data_rng (-9) 9)) ])) ]
        in
        let reference = out_tensor_named md env "best" Semantics.reference in
        let exec = out_tensor_named md env "best" Semantics.exec in
        let tiled =
          Buffer.data
            (Buffer.env_find (Semantics.eval_tiled md env ~tile_sizes:tiles) "best")
        in
        Dense.equal reference exec && Dense.equal reference tiled)

let prop_record_codegen =
  QCheck2.Test.make ~name:"fuzz: record computations generate kernels" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let dir, _, _, _, _ = gen_record_sample rng in
      match Mdh_directive.Transform.to_md_hom dir with
      | Error _ -> false
      | Ok md ->
        let dev = Mdh_machine.Device.a100_like in
        let sched = Mdh_lowering.Lower.mdh_default md dev in
        (match Mdh_codegen.Kernel.generate Mdh_codegen.Kernel.cuda md dev sched with
        | Ok src ->
          (* the custom operator survives into the source by name *)
          Test_util.contains src "mdh_combine_lex_max"
        | Error _ -> false))

let suite =
  ( "fuzz",
    [ QCheck_alcotest.to_alcotest prop_validation_total;
      QCheck_alcotest.to_alcotest prop_analyzer_agrees_with_validate;
      QCheck_alcotest.to_alcotest prop_cross_evaluator;
      QCheck_alcotest.to_alcotest prop_simulation_matches;
      QCheck_alcotest.to_alcotest prop_parallel_exec_matches;
      QCheck_alcotest.to_alcotest prop_tuned_schedule_still_correct;
      QCheck_alcotest.to_alcotest prop_codegen_total;
      QCheck_alcotest.to_alcotest prop_record_cross_evaluator;
      QCheck_alcotest.to_alcotest prop_record_codegen ] )
