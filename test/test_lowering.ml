(* Tests for schedules, footprints, the cost model, and simulation. *)

module Scalar = Mdh_tensor.Scalar
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Device = Mdh_machine.Device
module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
open Mdh_lowering

let check = Alcotest.check

let cpu = Device.xeon6140_like
let gpu = Device.a100_like

let matvec_md ?(i = 64) ?(k = 64) () =
  W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", i); ("K", k) ]

let matmul_md ?(n = 256) () =
  W.to_md_hom Mdh_workloads.Linalg.matmul [ ("I", n); ("J", n); ("K", n) ]

let prl_md () = W.to_md_hom Mdh_workloads.Prl.prl [ ("N", 64); ("I", 128) ]

(* --- Schedule --- *)

let test_sequential_is_legal () =
  let md = matvec_md () in
  check Alcotest.bool "legal" true (Schedule.legal md cpu (Schedule.sequential md) = Ok ())

let test_legal_rejects_bad_arity () =
  let md = matvec_md () in
  let s = { Schedule.tile_sizes = [| 4 |]; parallel_dims = []; used_layers = [] } in
  check Alcotest.bool "arity" true (Result.is_error (Schedule.legal md cpu s))

let test_legal_rejects_nonassociative_parallel_reduction () =
  (* a pw dimension with a non-associative custom function must not be
     parallelised *)
  let non_assoc = Combine.custom ~name:"sub" ~associative:false Scalar.sub in
  let md = matvec_md () in
  let md =
    { md with Mdh_core.Md_hom.combine_ops = [| Combine.cc; Combine.pw non_assoc |] }
  in
  let s =
    { Schedule.tile_sizes = [| 8; 8 |]; parallel_dims = [ 1 ]; used_layers = [ 0 ] }
  in
  check Alcotest.bool "rejected" true (Result.is_error (Schedule.legal md cpu s));
  (* the associative builtin is fine *)
  let md_ok = matvec_md () in
  check Alcotest.bool "accepted" true (Schedule.legal md_ok cpu s = Ok ())

let test_schedule_clamp () =
  let md = matvec_md ~i:8 ~k:8 () in
  let s =
    { Schedule.tile_sizes = [| 100; 2 |]; parallel_dims = []; used_layers = [] }
  in
  check (Alcotest.array Alcotest.int) "clamped" [| 8; 2 |]
    (Schedule.clamp md s).Schedule.tile_sizes

(* --- Footprint --- *)

let test_footprint_matvec_tile () =
  let md = matvec_md ~i:64 ~k:64 () in
  (* a 8x8 tile reads an 8x8 block of M (256 B) and 8 elements of v (32 B) *)
  check Alcotest.int "input bytes" (256 + 32)
    (Footprint.tile_input_bytes md ~box:[| 8; 8 |]);
  (* per-tile output: 8 rows x 1 collapsed column x 4 B *)
  check Alcotest.int "output bytes" 32 (Footprint.tile_output_bytes md ~box:[| 8; 8 |])

let test_footprint_stencil_union () =
  (* 3 shifted accesses to the same buffer must be unioned, not summed *)
  let md =
    W.to_md_hom Mdh_workloads.Stencils.gaussian_2d [ ("N", 16); ("M", 16) ]
  in
  let bytes = Footprint.tile_input_bytes md ~box:[| 4; 4 |] in
  (* union of the 3x3 family over a 4x4 tile: 6x6 elements x 4 B *)
  check Alcotest.int "union" (6 * 6 * 4) bytes

let test_naive_vs_compulsory () =
  let md = matmul_md ~n:64 () in
  check Alcotest.bool "naive >> compulsory" true
    (Footprint.naive_read_bytes md > 10.0 *. Footprint.compulsory_bytes md)

(* --- Cost model: qualitative laws --- *)

let seconds_exn md dev cg s =
  match Cost.seconds md dev cg s with
  | Ok x -> x
  | Error msg -> Alcotest.failf "cost: %s" msg

let test_tiling_beats_untiled_matmul () =
  (* MatMul with cache tiles must beat the untiled schedule on DRAM traffic *)
  let md = matmul_md ~n:1024 () in
  let untiled =
    { Schedule.tile_sizes = [| 1024; 1024; 1024 |]; parallel_dims = [ 0; 1 ];
      used_layers = [ 0; 1 ] }
  in
  let tiled =
    { untiled with Schedule.tile_sizes = [| 32; 32; 32 |] }
  in
  let t_untiled = seconds_exn md cpu Cost.plain_codegen untiled in
  let t_tiled = seconds_exn md cpu Cost.plain_codegen tiled in
  check Alcotest.bool "tiling wins" true (t_tiled *. 2.0 < t_untiled)

let test_parallelism_helps () =
  let md = matmul_md ~n:512 () in
  let seq = Schedule.sequential md in
  let par =
    { Schedule.tile_sizes = [| 64; 64; 64 |]; parallel_dims = [ 0; 1 ];
      used_layers = [ 0; 1 ] }
  in
  check Alcotest.bool "parallel wins" true
    (seconds_exn md cpu Cost.tuned_codegen par
    < seconds_exn md cpu Cost.tuned_codegen seq /. 4.0)

let test_reduction_parallelisation_helps_dot () =
  (* Dot on the GPU: the only dimension is the reduction; a system that
     cannot parallelise it uses one thread *)
  let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 1 lsl 24) ] in
  let serial_red =
    { Schedule.tile_sizes = [| 1 lsl 24 |]; parallel_dims = []; used_layers = [ 0; 1 ] }
  in
  let par_red = { serial_red with Schedule.parallel_dims = [ 0 ] } in
  let t_serial = seconds_exn md gpu Cost.tuned_codegen serial_red in
  let t_par = seconds_exn md gpu Cost.tuned_codegen par_red in
  check Alcotest.bool "reduction parallelisation essential" true
    (t_par *. 100.0 < t_serial)

let test_underutilisation_prl_inp1_gpu () =
  (* PRL shape study (Section 5.2): with only the small cc dimension
     parallel (OpenACC-style), Inp.1 (2^10 rows) underuses the GPU badly;
     parallelising the reduction too recovers it *)
  let mk n = W.to_md_hom Mdh_workloads.Prl.prl [ ("N", n); ("I", 1 lsl 15) ] in
  let md1 = mk (1 lsl 10) in
  let cc_only md =
    { Schedule.tile_sizes = Array.copy md.Mdh_core.Md_hom.sizes; parallel_dims = [ 0 ];
      used_layers = [ 0; 1 ] }
  in
  let both md = { (cc_only md) with Schedule.parallel_dims = [ 0; 1 ] } in
  let slowdown md =
    seconds_exn md gpu Cost.plain_codegen (cc_only md)
    /. seconds_exn md gpu Cost.tuned_codegen (both md)
  in
  let md2 = mk (1 lsl 15) in
  check Alcotest.bool "Inp1 suffers much more than Inp2" true
    (slowdown md1 > 4.0 *. slowdown md2)

let test_cost_rejects_illegal () =
  let md = matvec_md () in
  let bad = { Schedule.tile_sizes = [| 0; 1 |]; parallel_dims = []; used_layers = [] } in
  check Alcotest.bool "illegal" true (Result.is_error (Cost.seconds md cpu Cost.tuned_codegen bad))

let test_transfers_add_time () =
  let md = matvec_md ~i:4096 ~k:4096 () in
  let s = Lower.mdh_default md gpu in
  let without = seconds_exn md gpu Cost.tuned_codegen s in
  let wth =
    match Cost.seconds ~include_transfers:true md gpu Cost.tuned_codegen s with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "transfers dominate matvec" true (wth > 2.0 *. without)

(* --- Lower --- *)

let test_mdh_default_legal () =
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      List.iter
        (fun dev ->
          let s = Lower.mdh_default md dev in
          check Alcotest.bool
            (Printf.sprintf "%s on %s" w.W.wl_name dev.Device.device_name)
            true
            (Schedule.legal md dev s = Ok ()))
        [ cpu; gpu ])
    Catalog.all

let test_tile_options () =
  let md = matvec_md ~i:12 ~k:64 () in
  check (Alcotest.list Alcotest.int) "mixed extent" [ 1; 2; 4; 8; 12 ]
    (Lower.tile_options md ~dim:0);
  check Alcotest.bool "pow2 extent includes extent once" true
    (Lower.tile_options md ~dim:1 = [ 1; 2; 4; 8; 16; 32; 64 ])

let test_parallel_dim_options () =
  let md = matvec_md () in
  let options = Lower.parallel_dim_options md in
  (* dims {0 cc, 1 pw-add}: subsets of {0,1} minus empty = 3 *)
  check Alcotest.int "subsets" 3 (List.length options);
  check Alcotest.bool "largest first" true (List.hd options = [ 0; 1 ])

let test_best_of_picks_cheapest () =
  let md = matmul_md ~n:512 () in
  let a = Schedule.sequential md in
  let b =
    { Schedule.tile_sizes = [| 64; 64; 64 |]; parallel_dims = [ 0; 1 ];
      used_layers = [ 0; 1 ] }
  in
  match Lower.best_of md cpu Cost.tuned_codegen [ a; b ] with
  | Some (best, _) -> check Alcotest.bool "tiled parallel wins" true (best == b)
  | None -> Alcotest.fail "no schedule"

let test_schedule_string_roundtrip () =
  let examples =
    [ { Schedule.tile_sizes = [| 16; 8 |]; parallel_dims = [ 0 ]; used_layers = [ 0; 1 ] };
      { Schedule.tile_sizes = [| 4 |]; parallel_dims = []; used_layers = [] };
      { Schedule.tile_sizes = [| 1; 2; 3; 4; 5; 6; 7 |]; parallel_dims = [ 0; 3; 6 ];
        used_layers = [ 1 ] } ]
  in
  List.iter
    (fun s ->
      match Schedule.of_string (Schedule.to_string s) with
      | Ok s' -> check Alcotest.bool (Schedule.to_string s) true (s = s')
      | Error e -> Alcotest.fail e)
    examples;
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Schedule.of_string "not a schedule"))

(* --- Plan IR --- *)

let test_plan_matvec_structure () =
  let md = matvec_md ~i:64 ~k:32 () in
  let sched =
    { Schedule.tile_sizes = [| 64; 32 |]; parallel_dims = [ 0; 1 ];
      used_layers = [ 0; 1 ] }
  in
  match Plan.build md gpu sched with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check Alcotest.int "3 levels + point" 3 (Plan.depth plan);
    (match plan.Plan.levels with
    | [ Plan.Distribute { dims = [ 0 ]; points = 64; _ };
        Plan.Tree_reduce { dim = 1; op = "pw(add)"; items = 32; _ } ] -> ()
    | _ -> Alcotest.fail "unexpected plan shape");
    check Alcotest.int "parallelism" (64 * 32) (Plan.parallelism plan)

let test_plan_sequential_reduction () =
  let md = matvec_md ~i:64 ~k:32 () in
  let sched =
    { Schedule.tile_sizes = [| 16; 32 |]; parallel_dims = [ 0 ]; used_layers = [ 0 ] }
  in
  match Plan.build md cpu sched with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    (match plan.Plan.levels with
    | [ Plan.Distribute _; Plan.Accumulate { dim = 1; extent = 32; _ } ] -> ()
    | _ -> Alcotest.fail "expected distribute + accumulate");
    (* 64 parallel iterations over 18 usable units: ceil(64/18) = 4 rounds,
       so the achieved parallelism is ceil-div-balanced 64/4 = 16 — the same
       figure Cost.analyse reports as achieved_units *)
    check Alcotest.int "parallelism capped by units" 16 (Plan.parallelism plan)

let test_plan_tiled_sequential () =
  let md = matmul_md ~n:64 () in
  let sched =
    { Schedule.tile_sizes = [| 16; 16; 16 |]; parallel_dims = []; used_layers = [] }
  in
  match Plan.build md cpu sched with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let tiles =
      List.length
        (List.filter (function Plan.Tile _ -> true | _ -> false) plan.Plan.levels)
    in
    check Alcotest.int "two cc dims tiled" 2 tiles;
    check Alcotest.int "serial" 1 (Plan.parallelism plan)

let test_plan_scan () =
  let md =
    Mdh_workloads.Workload.to_md_hom Mdh_workloads.Mbbs.mbbs [ ("I", 8); ("J", 4) ]
  in
  let sched =
    { Schedule.tile_sizes = [| 8; 4 |]; parallel_dims = [ 1 ]; used_layers = [ 0 ] }
  in
  match Plan.build md cpu sched with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check Alcotest.bool "has scan level" true
      (List.exists
         (function Plan.Scan { op = "ps(add)"; _ } -> true | _ -> false)
         plan.Plan.levels)

let test_plan_rejects_illegal () =
  let md = matvec_md () in
  let bad = { Schedule.tile_sizes = [| 1 |]; parallel_dims = []; used_layers = [] } in
  check Alcotest.bool "illegal" true (Result.is_error (Plan.build md cpu bad))

let test_plan_sequential_shape () =
  let md = matmul_md ~n:8 () in
  let plan = Plan.sequential md in
  check Alcotest.int "serial" 1 (Plan.parallelism plan);
  check Alcotest.bool "no distribute" true
    (not
       (List.exists
          (function Plan.Distribute _ | Plan.Tree_reduce _ -> true | _ -> false)
          plan.Plan.levels));
  (* roles mirror the combine-operator classification *)
  check Alcotest.bool "k accumulates" true (Plan.role plan 2 = Plan.Role_accumulate);
  check Alcotest.bool "i is seq cc" true (Plan.role plan 0 = Plan.Role_seq)

let test_plan_digest_stable () =
  let md = matvec_md ~i:64 ~k:32 () in
  let sched = Lower.mdh_default md gpu in
  let d1 = Result.map Plan.digest (Plan.build md gpu sched) in
  let d2 = Result.map Plan.digest (Plan.build md gpu sched) in
  check Alcotest.bool "deterministic" true (d1 = d2 && Result.is_ok d1);
  (* a different schedule must not collide on this structure *)
  let other = { sched with Schedule.parallel_dims = [ 0 ] } in
  let d3 = Result.map Plan.digest (Plan.build md gpu other) in
  check Alcotest.bool "schedule-sensitive" true (d1 <> d3)

let test_plan_cache_counters () =
  let md = matvec_md ~i:64 ~k:32 () in
  let sched = Lower.mdh_default md gpu in
  Mdh_lowering.Plan_cache.clear ();
  Mdh_lowering.Plan_cache.reset_stats ();
  let p1 = Mdh_lowering.Plan_cache.build md gpu sched in
  let p2 = Mdh_lowering.Plan_cache.build md gpu sched in
  check Alcotest.bool "both ok" true (Result.is_ok p1 && Result.is_ok p2);
  check Alcotest.bool "same plan object" true (p1 == p2 || p1 = p2);
  let s = Mdh_lowering.Plan_cache.stats () in
  check Alcotest.int "one miss" 1 s.Mdh_lowering.Plan_cache.n_misses;
  check Alcotest.int "one hit" 1 s.Mdh_lowering.Plan_cache.n_hits;
  (* disabled cache neither hits nor records *)
  Mdh_lowering.Plan_cache.set_enabled false;
  let p3 = Mdh_lowering.Plan_cache.build md gpu sched in
  Mdh_lowering.Plan_cache.set_enabled true;
  check Alcotest.bool "bypass still ok" true (Result.is_ok p3);
  let s' = Mdh_lowering.Plan_cache.stats () in
  check Alcotest.int "no extra hit" 1 s'.Mdh_lowering.Plan_cache.n_hits

let test_plan_parallelism_matches_cost () =
  (* tentpole invariant: Plan.parallelism and the cost model's
     achieved_units are the same number on the same plan *)
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      List.iter
        (fun dev ->
          let sched = Lower.mdh_default md dev in
          match Plan.build md dev sched with
          | Error e -> Alcotest.failf "%s: %s" w.W.wl_name e
          | Ok plan ->
            let a = Cost.analyse_plan md dev Cost.tuned_codegen plan in
            check Alcotest.int
              (Printf.sprintf "%s on %s" w.W.wl_name dev.Mdh_machine.Device.device_name)
              (Plan.parallelism plan) a.Cost.achieved_units)
        [ cpu; gpu ])
    Catalog.all

(* --- Simulate: any legal schedule computes the reference result --- *)

let test_simulate_matches_reference () =
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      let env = w.W.gen w.W.test_params ~seed:42 in
      let expected = Mdh_core.Semantics.reference md env in
      let sched = Lower.mdh_default md cpu in
      match Simulate.run md cpu Cost.tuned_codegen sched env with
      | Error e -> Alcotest.failf "%s: %s" w.W.wl_name e
      | Ok r ->
        List.iter
          (fun (o : Mdh_core.Md_hom.output) ->
            check Alcotest.bool
              (Printf.sprintf "%s/%s" w.W.wl_name o.Mdh_core.Md_hom.out_name)
              true
              (Mdh_tensor.Dense.approx_equal ~rel:1e-4 ~abs:1e-5
                 (Buffer.data (Buffer.env_find r.Simulate.env o.Mdh_core.Md_hom.out_name))
                 (Buffer.data (Buffer.env_find expected o.Mdh_core.Md_hom.out_name))))
          md.Mdh_core.Md_hom.outputs)
    Catalog.all

let suite =
  let tc = Alcotest.test_case in
  ( "lowering",
    [ tc "sequential legal" `Quick test_sequential_is_legal;
      tc "legal rejects bad arity" `Quick test_legal_rejects_bad_arity;
      tc "legal rejects non-assoc parallel reduction" `Quick
        test_legal_rejects_nonassociative_parallel_reduction;
      tc "schedule clamp" `Quick test_schedule_clamp;
      tc "footprint matvec tile" `Quick test_footprint_matvec_tile;
      tc "footprint stencil union" `Quick test_footprint_stencil_union;
      tc "naive vs compulsory" `Quick test_naive_vs_compulsory;
      tc "tiling beats untiled (matmul)" `Quick test_tiling_beats_untiled_matmul;
      tc "parallelism helps" `Quick test_parallelism_helps;
      tc "reduction parallelisation (dot/gpu)" `Quick
        test_reduction_parallelisation_helps_dot;
      tc "PRL Inp1 underutilisation (gpu)" `Quick test_underutilisation_prl_inp1_gpu;
      tc "cost rejects illegal" `Quick test_cost_rejects_illegal;
      tc "transfers add time" `Quick test_transfers_add_time;
      tc "mdh_default legal everywhere" `Quick test_mdh_default_legal;
      tc "tile options" `Quick test_tile_options;
      tc "parallel dim options" `Quick test_parallel_dim_options;
      tc "best_of picks cheapest" `Quick test_best_of_picks_cheapest;
      tc "schedule string roundtrip" `Quick test_schedule_string_roundtrip;
      tc "plan matvec structure" `Quick test_plan_matvec_structure;
      tc "plan sequential reduction" `Quick test_plan_sequential_reduction;
      tc "plan tiled sequential" `Quick test_plan_tiled_sequential;
      tc "plan scan" `Quick test_plan_scan;
      tc "plan rejects illegal" `Quick test_plan_rejects_illegal;
      tc "plan sequential shape" `Quick test_plan_sequential_shape;
      tc "plan digest stable" `Quick test_plan_digest_stable;
      tc "plan cache counters" `Quick test_plan_cache_counters;
      tc "plan parallelism = cost achieved_units" `Quick
        test_plan_parallelism_matches_cost;
      tc "simulate matches reference (all workloads)" `Slow
        test_simulate_matches_reference ] )
