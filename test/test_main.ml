let () =
  Alcotest.run "mdh"
    [ Test_support.suite;
      Test_tensor.suite;
      Test_expr.suite;
      Test_combine.suite;
      Test_core.suite;
      Test_directive.suite;
      Test_machine.suite;
      Test_lowering.suite;
      Test_atf.suite;
      Test_fault.suite;
      Test_runtime.suite;
      Test_plan_exec.suite;
      Test_specializer.suite;
      Test_baselines.suite;
      Test_workloads.suite;
      Test_pragma.suite;
      Test_codegen.suite;
      Test_fuzz.suite;
      Test_model_props.suite;
      Test_reports.suite;
      Test_obs.suite;
      Test_rewrite.suite;
      Test_profile.suite;
      Test_analysis.suite;
      Test_serve.suite ]
