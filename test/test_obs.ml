(* Tests for the observability layer (lib/obs): clock monotonicity, span
   nesting, histogram bucket edges, Chrome trace JSON well-formedness,
   metrics from a full tuner run, and the bit-identity contract (tracing
   on vs off never changes a tuned schedule). *)

module Clock = Mdh_obs.Clock
module Metrics = Mdh_obs.Metrics
module Trace = Mdh_obs.Trace
module W = Mdh_workloads.Workload
module Cost = Mdh_lowering.Cost
open Mdh_atf

let check = Alcotest.check

let cpu = Mdh_machine.Device.xeon6140_like

(* every tracing test must leave the process-wide flag and buffers the
   way it found them, or later determinism tests see stale events *)
let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    f

(* --- clock --- *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    check Alcotest.bool "non-decreasing" true (Int64.compare t !prev >= 0);
    prev := t
  done

(* --- spans --- *)

let span_bounds e =
  match e.Trace.ev_ph with
  | Trace.Complete dur -> (e.Trace.ev_ts_ns, Int64.add e.Trace.ev_ts_ns dur)
  | _ -> Alcotest.fail "expected a Complete event"

let test_span_nesting_and_timing () =
  with_tracing (fun () ->
      let r =
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () ->
                ignore (Sys.opaque_identity (Array.init 1000 Fun.id));
                17))
      in
      check Alcotest.int "value returned" 17 r;
      let events = Trace.events () in
      check Alcotest.int "two spans" 2 (List.length events);
      let find name = List.find (fun e -> e.Trace.ev_name = name) events in
      let o0, o1 = span_bounds (find "outer") in
      let i0, i1 = span_bounds (find "inner") in
      check Alcotest.bool "inner starts after outer" true (i0 >= o0);
      check Alcotest.bool "inner ends before outer" true (i1 <= o1);
      check Alcotest.bool "durations non-negative" true (o1 >= o0 && i1 >= i0);
      (* events are returned sorted by start time *)
      let ts = List.map (fun e -> e.Trace.ev_ts_ns) events in
      check Alcotest.bool "sorted" true (List.sort Int64.compare ts = ts))

let test_disabled_emits_nothing () =
  Trace.clear ();
  check Alcotest.bool "off by default here" false (Trace.enabled ());
  let r = Trace.with_span "ghost" (fun () -> 42) in
  Trace.instant "ghost-instant";
  Trace.counter_event "ghost-counter" 1.0;
  check Alcotest.int "body still runs" 42 r;
  check Alcotest.int "no events buffered" 0 (List.length (Trace.events ()))

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "boom")
       with Failure _ -> ());
      match Trace.events () with
      | [ e ] ->
        check Alcotest.string "span emitted" "boom" e.Trace.ev_name;
        let t0, t1 = span_bounds e in
        check Alcotest.bool "closed" true (t1 >= t0)
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_worker_domain_spans_collected () =
  with_tracing (fun () ->
      Mdh_runtime.Pool.with_pool ~num_domains:2 (fun pool ->
          Mdh_runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:16 (fun i ->
              Trace.with_span "from-worker" (fun () -> ignore i)));
      let events = Trace.events () in
      let spans = List.filter (fun e -> e.Trace.ev_name = "from-worker") events in
      check Alcotest.int "all 16 collected across domains" 16 (List.length spans);
      let tids =
        List.sort_uniq compare (List.map (fun e -> e.Trace.ev_tid) events)
      in
      check Alcotest.bool "more than one emitting domain" true
        (List.length tids > 1))

(* --- histogram buckets --- *)

let test_histogram_bucket_edges () =
  check Alcotest.int "at lowest edge" 0 (Metrics.bucket_index 1e-9);
  check Alcotest.int "below lowest edge" 0 (Metrics.bucket_index 1e-12);
  check Alcotest.int "zero" 0 (Metrics.bucket_index 0.0);
  check Alcotest.int "negative" 0 (Metrics.bucket_index (-1.0));
  check Alcotest.int "huge lands in last" (Metrics.n_buckets - 1)
    (Metrics.bucket_index 1e30);
  check Alcotest.int "infinite lands in last" (Metrics.n_buckets - 1)
    (Metrics.bucket_index infinity);
  check (Alcotest.float 0.0) "last bucket unbounded" infinity
    (Metrics.bucket_upper (Metrics.n_buckets - 1));
  (* the bucket invariant: upper (i-1) < v <= upper i *)
  for i = 0 to Metrics.n_buckets - 2 do
    let upper = Metrics.bucket_upper i in
    check Alcotest.int (Printf.sprintf "edge %d inclusive" i) i
      (Metrics.bucket_index upper);
    check Alcotest.int (Printf.sprintf "edge %d + eps overflows" i) (i + 1)
      (Metrics.bucket_index (upper *. 1.0001))
  done;
  (* edges double: upper(i+1) = 2 * upper(i) *)
  for i = 0 to Metrics.n_buckets - 3 do
    check (Alcotest.float 1e-18) "power-of-two edges"
      (2.0 *. Metrics.bucket_upper i)
      (Metrics.bucket_upper (i + 1))
  done

let test_histogram_observe () =
  let h = Metrics.histogram "test.obs.histogram_s" in
  List.iter (Metrics.observe h) [ 1e-3; 2e-3; 0.5 ];
  let s = Metrics.histogram_value h in
  check Alcotest.int "count" 3 s.Metrics.h_count;
  check (Alcotest.float 1e-12) "sum" 0.503 s.Metrics.h_sum;
  check (Alcotest.float 1e-12) "min" 1e-3 s.Metrics.h_min;
  check (Alcotest.float 1e-12) "max" 0.5 s.Metrics.h_max;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.h_buckets in
  check Alcotest.int "bucket counts total the observations" 3 total;
  List.iter
    (fun (i, _) ->
      check Alcotest.bool "bucket index in range" true
        (i >= 0 && i < Metrics.n_buckets))
    s.Metrics.h_buckets

(* --- registry --- *)

let test_counter_roundtrip () =
  let c = Metrics.counter "test.obs.counter" in
  Metrics.reset_counter c;
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "value" 5 (Metrics.value c);
  check Alcotest.bool "same name, same handle" true
    (Metrics.value (Metrics.counter "test.obs.counter") = 5);
  Metrics.reset_counter c;
  check Alcotest.int "reset" 0 (Metrics.value c)

let test_kind_clash_rejected () =
  ignore (Metrics.counter "test.obs.clash");
  match Metrics.gauge "test.obs.clash" with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ()

(* --- Chrome trace JSON --- *)

(* emitted JSON is validated with the library's own reader,
   Mdh_support.Json_in — the same one mdhc and the bench gate use *)
module Json_reader = Mdh_support.Json_in

let chrome_dump () =
  let path = Filename.temp_file "mdh-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path Trace.write_chrome;
      In_channel.with_open_text path In_channel.input_all)

let test_chrome_trace_wellformed () =
  with_tracing (fun () ->
      Trace.with_span ~cat:"test" ~args:[ ("k", "v\"quoted\"") ] "alpha"
        (fun () -> Trace.instant "mark");
      Trace.counter_event "track" 3.5;
      let module J = Json_reader in
      let json = J.parse (chrome_dump ()) in
      let events =
        match J.member "traceEvents" json with
        | Some (J.Arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents array missing"
      in
      check Alcotest.int "three events" 3 (List.length events);
      let phases =
        List.map
          (fun ev ->
            (* every event carries the mandatory Chrome fields *)
            (match J.member "name" ev with
            | Some (J.Str _) -> ()
            | _ -> Alcotest.fail "name missing");
            (match J.member "ts" ev with
            | Some (J.Num ts) -> check Alcotest.bool "ts >= 0" true (ts >= 0.0)
            | _ -> Alcotest.fail "ts missing");
            (match (J.member "pid" ev, J.member "tid" ev) with
            | Some (J.Num _), Some (J.Num _) -> ()
            | _ -> Alcotest.fail "pid/tid missing");
            match J.member "ph" ev with
            | Some (J.Str ph) ->
              if ph = "X" then (
                match J.member "dur" ev with
                | Some (J.Num d) -> check Alcotest.bool "dur >= 0" true (d >= 0.0)
                | _ -> Alcotest.fail "X event without dur");
              ph
            | _ -> Alcotest.fail "ph missing")
          events
      in
      List.iter
        (fun ph ->
          check Alcotest.bool ("known phase " ^ ph) true
            (List.mem ph [ "X"; "i"; "C" ]))
        phases;
      check Alcotest.bool "span exported" true (List.mem "X" phases);
      check Alcotest.bool "instant exported" true (List.mem "i" phases);
      check Alcotest.bool "counter exported" true (List.mem "C" phases))

let test_chrome_trace_empty_is_valid () =
  Trace.clear ();
  let module J = Json_reader in
  match J.member "traceEvents" (J.parse (chrome_dump ())) with
  | Some (J.Arr []) -> ()
  | _ -> Alcotest.fail "empty trace must still be a valid object"

let test_metrics_json_parses () =
  let module J = Json_reader in
  ignore (Metrics.counter "test.obs.json_counter");
  match J.parse (Metrics.to_json ()) with
  | J.Obj kvs -> check Alcotest.bool "non-empty object" true (kvs <> [])
  | _ -> Alcotest.fail "metrics JSON is not an object"

(* --- end-to-end: tuner metrics and bit-identity --- *)

let test_tune_emits_metrics () =
  let evals = Metrics.counter "atf.search.evaluations" in
  let runs = Metrics.counter "atf.tuner.runs" in
  let evals0 = Metrics.value evals and runs0 = Metrics.value runs in
  Cost_cache.reset_stats ();
  let md =
    W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 2048); ("K", 2048) ]
  in
  (match Tuner.tune ~budget:60 ~seed:7 md cpu Cost.tuned_codegen with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "one tuner run recorded" (runs0 + 1) (Metrics.value runs);
  let d_evals = Metrics.value evals - evals0 in
  check Alcotest.bool "search evaluations recorded" true (d_evals > 0);
  let cc = Cost_cache.stats () in
  check Alcotest.bool "cost cache accounted" true
    (cc.Cost_cache.n_hits + cc.Cost_cache.n_misses > 0);
  let tune_s = Metrics.histogram_value (Metrics.histogram "atf.tuner.tune_s") in
  check Alcotest.bool "tune duration observed" true (tune_s.Metrics.h_count > 0)

let test_trace_bit_identity_all_workloads () =
  (* the acceptance contract: enabling tracing must not change any tuned
     schedule, for every workload in the catalogue *)
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      let tune () =
        match Tuner.tune ~budget:80 ~seed:3 md cpu Cost.tuned_codegen with
        | Ok t -> t
        | Error e -> Alcotest.failf "%s: %s" w.W.wl_name e
      in
      Trace.set_enabled false;
      let plain = tune () in
      let traced = with_tracing tune in
      check Alcotest.bool (w.W.wl_name ^ ": same schedule") true
        (plain.Tuner.schedule = traced.Tuner.schedule);
      check (Alcotest.float 0.0) (w.W.wl_name ^ ": same cost")
        plain.Tuner.estimated_s traced.Tuner.estimated_s;
      check Alcotest.int (w.W.wl_name ^ ": same evaluations")
        plain.Tuner.search.Search.evaluations
        traced.Tuner.search.Search.evaluations)
    Mdh_workloads.Catalog.all

let test_pool_publishes_metrics () =
  let jobs = Metrics.counter "runtime.pool.jobs" in
  let jobs0 = Metrics.value jobs in
  let busy0 = Metrics.(gauge_value (gauge "runtime.pool.busy_s")) in
  Mdh_runtime.Pool.with_pool ~num_domains:2 (fun pool ->
      Mdh_runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:64 (fun i ->
          ignore (Sys.opaque_identity (i * i))));
  check Alcotest.bool "jobs counted" true (Metrics.value jobs > jobs0);
  check Alcotest.bool "busy time accumulated" true
    (Metrics.(gauge_value (gauge "runtime.pool.busy_s")) >= busy0);
  check Alcotest.bool "capacity positive" true
    (Metrics.(gauge_value (gauge "runtime.pool.capacity_s")) > 0.0);
  let u = Metrics.(gauge_value (gauge "runtime.pool.utilization")) in
  check Alcotest.bool "utilization in [0,1]" true (u >= 0.0 && u <= 1.0)

let suite =
  let tc = Alcotest.test_case in
  ( "obs",
    [ tc "clock monotone" `Quick test_clock_monotone;
      tc "span nesting and timing" `Quick test_span_nesting_and_timing;
      tc "disabled tracing emits nothing" `Quick test_disabled_emits_nothing;
      tc "span survives exception" `Quick test_span_survives_exception;
      tc "worker-domain spans collected" `Quick test_worker_domain_spans_collected;
      tc "histogram bucket edges" `Quick test_histogram_bucket_edges;
      tc "histogram observe" `Quick test_histogram_observe;
      tc "counter roundtrip" `Quick test_counter_roundtrip;
      tc "metric kind clash rejected" `Quick test_kind_clash_rejected;
      tc "chrome trace well-formed" `Quick test_chrome_trace_wellformed;
      tc "chrome trace empty is valid" `Quick test_chrome_trace_empty_is_valid;
      tc "metrics JSON parses" `Quick test_metrics_json_parses;
      tc "tuner run emits metrics" `Quick test_tune_emits_metrics;
      tc "bit-identity: tracing on vs off (all workloads)" `Quick
        test_trace_bit_identity_all_workloads;
      tc "pool publishes metrics at shutdown" `Quick test_pool_publishes_metrics ] )
