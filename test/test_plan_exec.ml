(* Properties of the plan-driven executor.

   The executor walks Plan.t — the same IR the cost model, simulator and
   code generators consume — so these tests pin the contract that matters
   after the refactor: any legal schedule computes the reference result;
   with the fast path and the specializer off, the walker reproduces the
   pre-refactor single-dim chunked executor bit-for-bit on the default
   schedules; layer misfits are rejected rather than masked; fast-path
   dispatch is counted. *)

module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Combine = Mdh_combine.Combine
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Plan = Mdh_lowering.Plan
module Device = Mdh_machine.Device
module Rng = Mdh_support.Rng
open Mdh_runtime

let check = Alcotest.check
let with_pool f = Pool.with_pool ~num_domains:3 f
let cpu = Device.xeon6140_like
let gpu = Device.a100_like

let outputs_agree ~bitwise md a b =
  List.for_all
    (fun (o : Md_hom.output) ->
      let da = Buffer.data (Buffer.env_find a o.Md_hom.out_name) in
      let db = Buffer.data (Buffer.env_find b o.Md_hom.out_name) in
      if bitwise then Dense.equal da db
      else Dense.approx_equal ~rel:1e-4 ~abs:1e-5 da db)
    md.Md_hom.outputs

(* --- random legal schedules (pinned seed: the draws never change) --- *)

let random_schedule rng md dev =
  let rank = Md_hom.rank md in
  let tile_sizes =
    Array.init rank (fun d ->
        let opts = Lower.tile_options md ~dim:d in
        List.nth opts (Rng.int rng (List.length opts)))
  in
  let parallel_dims =
    List.filter (fun _ -> Rng.bool rng) (Lower.parallelisable_dims md)
  in
  let used_layers =
    if parallel_dims = [] then []
    else List.init (1 + Rng.int rng (Array.length dev.Device.layers)) Fun.id
  in
  let sched = { Schedule.tile_sizes; parallel_dims; used_layers } in
  match Schedule.legal md dev sched with Ok () -> Some sched | Error _ -> None

let test_random_schedules_match_reference () =
  (* every catalogue workload x pinned random legal schedules: the plan
     walker (fast path included) computes Semantics.exec's result within
     the repository's float tolerance *)
  let rng = Rng.create 2026 in
  with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let env = w.W.gen w.W.test_params ~seed:7 in
          let expected = Semantics.exec md env in
          let tried = ref 0 in
          let draws = ref 0 in
          while !tried < 4 && !draws < 50 do
            incr draws;
            match random_schedule rng md cpu with
            | None -> ()
            | Some sched ->
              incr tried;
              (match Exec.run ~device:cpu pool md sched env with
              | Error e ->
                Alcotest.failf "%s %s: %s" w.W.wl_name
                  (Schedule.to_string sched) e
              | Ok got ->
                check Alcotest.bool
                  (Printf.sprintf "%s under %s" w.W.wl_name
                     (Schedule.to_string sched))
                  true
                  (outputs_agree ~bitwise:false md got expected))
          done;
          check Alcotest.bool (w.W.wl_name ^ ": legal draws found") true
            (!tried > 0))
        Catalog.all)

(* --- bit-identity with the pre-refactor executor --- *)

(* the executor this refactor replaced: split the lowest-indexed parallel
   dimension into [workers * 2] ceil-sized chunks, evaluate each box with
   the reference interpreter, recombine the partials in chunk order *)
let old_exec pool md (sched : Schedule.t) env =
  match sched.Schedule.parallel_dims with
  | [] -> Ok (Exec.run_seq md env)
  | dims ->
    let d = List.fold_left min (List.hd dims) dims in
    let extent = md.Md_hom.sizes.(d) in
    let workers = Pool.num_workers pool in
    let n = max 1 (min extent (workers * 2)) in
    let chunk = (extent + n - 1) / n in
    let ranges =
      List.filter
        (fun (_, sz) -> sz > 0)
        (List.init n (fun i -> (i * chunk, min chunk (extent - (i * chunk)))))
    in
    let partials =
      Pool.run_in_parallel pool
        (Array.of_list
           (List.map
              (fun (lo_d, sz_d) () ->
                List.map
                  (fun (o : Md_hom.output) ->
                    let lo = Array.make (Md_hom.rank md) 0 in
                    let sz = Array.copy md.Md_hom.sizes in
                    lo.(d) <- lo_d;
                    sz.(d) <- sz_d;
                    Semantics.eval_box md env o ~lo ~sz)
                  md.Md_hom.outputs)
              ranges))
    in
    let combined =
      match Array.to_list partials with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun acc p ->
            List.map2
              (fun a b ->
                Combine.combine_partials md.Md_hom.combine_ops.(d) ~dim:d a b)
              acc p)
          first rest
    in
    let env' = Semantics.alloc_outputs md env in
    List.iter2
      (fun (o : Md_hom.output) part -> Semantics.write_output env' md o part)
      md.Md_hom.outputs combined;
    Ok env'

let test_bit_identical_to_old_executor () =
  with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let env = w.W.gen w.W.test_params ~seed:11 in
          (* untiled schedule: the old executor never honoured tiles, so
             bit-comparing under tiles =  extents isolates the chunking *)
          let sched =
            { (Schedule.sequential md) with
              Schedule.parallel_dims = Lower.parallelisable_dims md }
          in
          let old_env =
            match old_exec pool md sched env with
            | Ok e -> e
            | Error e -> Alcotest.failf "%s old: %s" w.W.wl_name e
          in
          match Exec.run ~fastpath:false ~specialize:false pool md sched env with
          | Error e -> Alcotest.failf "%s new: %s" w.W.wl_name e
          | Ok new_env ->
            check Alcotest.bool (w.W.wl_name ^ " bit-identical") true
              (outputs_agree ~bitwise:true md new_env old_env))
        Catalog.all)

(* --- layer misfits are errors, not silently masked (satellite 2) --- *)

let test_used_layers_rejected_not_masked () =
  with_pool (fun pool ->
      let w = Option.get (Catalog.find "matvec") in
      let md = W.to_md_hom w w.W.test_params in
      let env = w.W.gen w.W.test_params ~seed:3 in
      let sched =
        { (Schedule.sequential md) with
          Schedule.parallel_dims = [ 0 ];
          Schedule.used_layers = [ 0; 1 ] }
      in
      (* the host pool device has a single layer: layer 1 must be rejected
         (the pre-refactor executor silently cleared used_layers instead) *)
      (match Exec.run pool md sched env with
      | Ok _ -> Alcotest.fail "host pool accepted a two-layer schedule"
      | Error msg ->
        check Alcotest.bool "error names the layer" true
          (let lower = String.lowercase_ascii msg in
           let contains s sub =
             let n = String.length sub in
             let rec go i =
               i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
             in
             go 0
           in
           contains lower "layer"));
      (* the same schedule is fine on a device that really has two layers *)
      match Exec.run ~device:cpu pool md sched env with
      | Ok got ->
        check Alcotest.bool "tuned device accepted" true
          (outputs_agree ~bitwise:false md got (Semantics.exec md env))
      | Error e -> Alcotest.failf "cpu device rejected: %s" e)

(* --- fast-path dispatch (satellite 6) --- *)

let test_fastpath_hit_counted () =
  let c = Mdh_obs.Metrics.counter "runtime.kernels.fastpath_hits" in
  with_pool (fun pool ->
      let w = Option.get (Catalog.find "dot") in
      let md = W.to_md_hom w w.W.test_params in
      let env = w.W.gen w.W.test_params ~seed:5 in
      let sched =
        { (Schedule.sequential md) with
          Schedule.parallel_dims = Lower.parallelisable_dims md }
      in
      let before = Mdh_obs.Metrics.value c in
      (match Exec.run pool md sched env with
      | Error e -> Alcotest.fail e
      | Ok got ->
        check Alcotest.bool "fast-path result correct" true
          (outputs_agree ~bitwise:false md got (Semantics.exec md env)));
      check Alcotest.int "hit counted" (before + 1) (Mdh_obs.Metrics.value c);
      (* ~fastpath:false must not dispatch *)
      (match Exec.run ~fastpath:false pool md sched env with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      check Alcotest.int "disabled: no hit" (before + 1)
        (Mdh_obs.Metrics.value c);
      (* a workload outside the kernel library never matches: matmul^t has
         a transposed access pattern the matmul matcher must refuse *)
      let wt = Option.get (Catalog.find "matmul^t") in
      let mdt = W.to_md_hom wt wt.W.test_params in
      let envt = wt.W.gen wt.W.test_params ~seed:5 in
      let schedt =
        { (Schedule.sequential mdt) with
          Schedule.parallel_dims = Lower.parallelisable_dims mdt }
      in
      (match Exec.run pool mdt schedt envt with
      | Error e -> Alcotest.fail e
      | Ok got ->
        check Alcotest.bool "generic path correct" true
          (outputs_agree ~bitwise:false mdt got (Semantics.exec mdt envt)));
      check Alcotest.int "no false match" (before + 1)
        (Mdh_obs.Metrics.value c))

(* --- chunking policy is a parameter (satellite 1) --- *)

let test_chunks_per_worker_param () =
  with_pool (fun pool ->
      let w = Option.get (Catalog.find "matmul") in
      let md = W.to_md_hom w w.W.test_params in
      let env = w.W.gen w.W.test_params ~seed:13 in
      let sched =
        { (Schedule.sequential md) with
          Schedule.parallel_dims = Lower.parallelisable_dims md }
      in
      let expected = Semantics.exec md env in
      List.iter
        (fun cpw ->
          match
            Exec.run ~chunks_per_worker:cpw ~fastpath:false ~specialize:false
              pool md sched env
          with
          | Error e -> Alcotest.failf "chunks_per_worker=%d: %s" cpw e
          | Ok got ->
            check Alcotest.bool
              (Printf.sprintf "chunks_per_worker=%d" cpw)
              true
              (outputs_agree ~bitwise:false md got expected))
        [ 1; 4; 16 ])

let suite =
  let tc = Alcotest.test_case in
  ( "plan-exec",
    [ tc "random legal schedules match reference" `Slow
        test_random_schedules_match_reference;
      tc "bit-identical to pre-refactor executor" `Quick
        test_bit_identical_to_old_executor;
      tc "used_layers rejected, not masked" `Quick
        test_used_layers_rejected_not_masked;
      tc "fastpath hits counted" `Quick test_fastpath_hit_counted;
      tc "chunks_per_worker parameter" `Quick test_chunks_per_worker_param ] )
