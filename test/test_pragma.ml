(* Tests for the textual #pragma mdh frontend (lexer + parser + integration
   with validation and the semantics). *)

module Scalar = Mdh_tensor.Scalar
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Combine = Mdh_combine.Combine
module D = Mdh_directive.Directive
open Mdh_pragma

let check = Alcotest.check

let matvec_src =
  {|
#pragma mdh out(w : fp32) inp(M : fp32, v : fp32) combine_ops(cc, pw(add))
for (i = 0; i < I; i++)
  for (k = 0; k < K; k++)
    w[i] = M[i, k] * v[k];
|}

let parse_ok ?params src =
  match Parser.parse ?params src with
  | Ok dir -> dir
  | Error e -> Alcotest.failf "unexpected parse error: %s" (Parser.error_to_string e)

let parse_err ?params src =
  match Parser.parse ?params src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

(* --- lexer --- *)

let test_lexer_tokens () =
  match Lexer.tokenize "for (i = 0; i < 10; i++) x[i] = 1.5;" with
  | Error e -> Alcotest.failf "lex: %s" (Format.asprintf "%a" Lexer.pp_error e)
  | Ok tokens ->
    let kinds = List.map (fun t -> t.Token.token) tokens in
    check Alcotest.bool "starts with for" true (List.hd kinds = Token.Kw_for);
    check Alcotest.bool "has ++" true (List.mem Token.Plus_plus kinds);
    check Alcotest.bool "has float" true (List.mem (Token.Float_lit 1.5) kinds);
    check Alcotest.bool "ends with eof" true
      (List.nth kinds (List.length kinds - 1) = Token.Eof)

let test_lexer_comments () =
  match Lexer.tokenize "// line comment\n 42 /* block\n comment */ 7" with
  | Error _ -> Alcotest.fail "lex"
  | Ok tokens ->
    check
      (Alcotest.list (Alcotest.testable (fun ppf t -> Fmt.string ppf (Token.describe t)) ( = )))
      "only the numbers"
      [ Token.Int_lit 42; Token.Int_lit 7; Token.Eof ]
      (List.map (fun t -> t.Token.token) tokens)

let test_lexer_positions () =
  match Lexer.tokenize "a\n  b" with
  | Error _ -> Alcotest.fail "lex"
  | Ok [ _a; b; _eof ] ->
    check Alcotest.int "line" 2 b.Token.pos.Token.line;
    check Alcotest.int "col" 3 b.Token.pos.Token.col
  | Ok _ -> Alcotest.fail "token count"

let test_lexer_rejects_stray_char () =
  match Lexer.tokenize "a $ b" with
  | Error e -> check Alcotest.bool "mentions char" true
      (Test_util.contains (Format.asprintf "%a" Lexer.pp_error e) "'$'")
  | Ok _ -> Alcotest.fail "expected error"

let test_lexer_line_continuation () =
  match Lexer.tokenize "#pragma mdh \\\n out" with
  | Ok tokens ->
    check Alcotest.bool "pragma then ident" true
      (List.map (fun t -> t.Token.token) tokens
      = [ Token.Pragma_mdh; Token.Ident "out"; Token.Eof ])
  | Error _ -> Alcotest.fail "lex"

(* --- parser: structure --- *)

let test_parse_matvec_structure () =
  let dir = parse_ok ~params:[ ("I", 8); ("K", 6) ] matvec_src in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "loops"
    [ ("i", 8); ("k", 6) ] (D.loops dir);
  check Alcotest.int "outs" 1 (List.length dir.D.outs);
  check Alcotest.int "inps" 2 (List.length dir.D.inps);
  check (Alcotest.list Alcotest.string) "combine ops" [ "cc"; "pw(add)" ]
    (List.map Combine.name dir.D.combine_ops)

let test_parse_matches_embedded_directive () =
  (* the parsed MatVec and the embedded-API MatVec produce identical
     representations *)
  let parsed =
    Mdh_directive.Transform.to_md_hom_exn
      (parse_ok ~params:[ ("I", 8); ("K", 6) ] matvec_src)
  in
  let embedded =
    Mdh_workloads.Workload.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 8); ("K", 6) ]
  in
  check (Alcotest.array Alcotest.int) "sizes" embedded.Mdh_core.Md_hom.sizes
    parsed.Mdh_core.Md_hom.sizes;
  let env = Mdh_workloads.Linalg.matvec.Mdh_workloads.Workload.gen [ ("I", 8); ("K", 6) ] ~seed:3 in
  let a = Mdh_core.Semantics.exec parsed env in
  let b = Mdh_core.Semantics.exec embedded env in
  check Alcotest.bool "same results" true
    (Dense.equal (Buffer.data (Buffer.env_find a "w")) (Buffer.data (Buffer.env_find b "w")))

let test_parse_declared_shapes () =
  let src =
    {|
#pragma mdh out(res : fp32) inp(img : fp32[4, 9, 9, 2], flt : fp32) \
            combine_ops(cc, cc, pw(add))
for (n = 0; n < 4; n++)
  for (p = 0; p < 4; p++)
    for (r = 0; r < 3; r++)
      res[n, p] = img[n, 2 * p + r, r, 0] * flt[r];
|}
  in
  let dir = parse_ok src in
  let md = Mdh_directive.Transform.to_md_hom_exn dir in
  let img = Option.get (Mdh_core.Md_hom.find_input md "img") in
  check (Alcotest.array Alcotest.int) "declared shape kept" [| 4; 9; 9; 2 |]
    img.Mdh_core.Md_hom.inp_shape

let test_parse_stencil_with_floats () =
  let src =
    {|
#pragma mdh out(y : fp32) inp(x : fp32) combine_ops(cc)
for (i = 0; i < 10; i++)
  y[i] = 0.25 * x[i] + 0.5 * x[i + 1] + 0.25 * x[i + 2];
|}
  in
  let md = Mdh_directive.Transform.to_md_hom_exn (parse_ok src) in
  (* all-fp32 buffers: float literals are fp32, so this type-checks *)
  let x = Option.get (Mdh_core.Md_hom.find_input md "x") in
  check Alcotest.int "3 accesses" 3 (List.length x.Mdh_core.Md_hom.accesses);
  check (Alcotest.array Alcotest.int) "padded" [| 12 |] x.Mdh_core.Md_hom.inp_shape

let test_parse_braces_and_let () =
  let src =
    {|
#pragma mdh out(w : fp32) inp(M : fp32, v : fp32) combine_ops(cc, pw(add))
for (i = 0; i < 4; i++) {
  for (k = 0; k < 3; k++) {
    let t = M[i, k];
    w[i] = t * v[k];
  }
}
|}
  in
  let dir = parse_ok src in
  check Alcotest.bool "validates" true (Mdh_directive.Validate.run dir = Ok ());
  check Alcotest.int "two statements" 2 (List.length (D.stmts dir))

let test_parse_ternary_min_cast () =
  let src =
    {|
#pragma mdh out(y : fp32) inp(x : fp32) combine_ops(pw(max))
for (i = 0; i < 9; i++)
  y[0] = x[i] < 0.0 ? -x[i] : min(x[i], (fp32) 1);
|}
  in
  let dir = parse_ok src in
  check Alcotest.bool "validates" true (Mdh_directive.Validate.run dir = Ok ());
  let md = Mdh_directive.Transform.to_md_hom_exn dir in
  let rng = Mdh_support.Rng.create 4 in
  let env =
    Buffer.env_of_list [ Mdh_workloads.Workload.float_buffer "x" rng [| 9 |] ]
  in
  let out = Mdh_core.Semantics.exec md env in
  let y = Scalar.to_float (Dense.get (Buffer.data (Buffer.env_find out "y")) [| 0 |]) in
  check Alcotest.bool "max of clamped absolutes in [0,1]" true (y >= 0.0 && y <= 1.0)

let test_parse_ps_operator () =
  let src =
    {|
#pragma mdh out(b : fp32) inp(a : fp32) combine_ops(ps(add), cc)
for (i = 0; i < 6; i++)
  for (j = 0; j < 3; j++)
    b[i, j] = a[i, j];
|}
  in
  let md = Mdh_directive.Transform.to_md_hom_exn (parse_ok src) in
  check Alcotest.bool "ps parsed" true
    (match md.Mdh_core.Md_hom.combine_ops.(0) with
    | Combine.Ps _ -> true
    | _ -> false)

let test_imperfect_nest_parses_then_rejected () =
  let src =
    {|
#pragma mdh out(w : fp32) inp(v : fp32) combine_ops(cc, pw(add))
for (i = 0; i < 4; i++) {
  w[i] = v[0];
  for (k = 0; k < 3; k++)
    w[i] = v[k];
}
|}
  in
  let dir = parse_ok src in
  match Mdh_directive.Validate.run dir with
  | Error { Mdh_directive.Validate.kind = Mdh_directive.Validate.Imperfect_nest; _ } -> ()
  | _ -> Alcotest.fail "expected the validator to reject the imperfect nest"

(* --- parser: errors with positions --- *)

let expect_error_containing ?params src fragment =
  let e = parse_err ?params src in
  let msg = Parser.error_to_string e in
  check Alcotest.bool (Printf.sprintf "%S in %S" fragment msg) true
    (Test_util.contains msg fragment)

let test_error_missing_out () =
  expect_error_containing
    "#pragma mdh inp(v : fp32) combine_ops(cc)\nfor (i = 0; i < 4; i++) w[i] = v[i];"
    "out(...)"

let test_error_unknown_type () =
  expect_error_containing
    "#pragma mdh out(w : float16) combine_ops(cc)\nfor (i = 0; i < 4; i++) w[i] = 1.0;"
    "float16"

let test_error_unknown_combine_op () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(scan)\nfor (i = 0; i < 4; i++) w[i] = 1.0;"
    "scan"

let test_error_custom_fn_hint () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(pw(prl_max))\nfor (i = 0; i < 4; i++) w[i] = 1.0;"
    "embedded API"

let test_error_nonzero_lower_bound () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(cc)\nfor (i = 1; i < 4; i++) w[i] = 1.0;"
    "start at 0"

let test_error_wrong_loop_var () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(cc)\nfor (i = 0; j < 4; i++) w[i] = 1.0;"
    "loop condition"

let test_error_unknown_param () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(cc)\nfor (i = 0; i < N; i++) w[i] = 1.0;"
    "parameter"

let test_error_unknown_identifier () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(cc)\nfor (i = 0; i < 4; i++) w[i] = q;"
    "\"q\""

let test_error_undeclared_buffer_access () =
  expect_error_containing
    "#pragma mdh out(w : fp32) combine_ops(cc)\nfor (i = 0; i < 4; i++) w[i] = z[i];"
    "not declared"

let test_error_position_is_meaningful () =
  let e =
    parse_err
      "#pragma mdh out(w : fp32) combine_ops(cc)\nfor (i = 0; i < 4; i++)\n  w[i] = ;"
  in
  check Alcotest.int "error on line 3" 3 e.Parser.pos.Token.line

(* --- parser totality: no input may crash it --- *)

let prop_parser_total_on_noise =
  QCheck2.Test.make ~name:"parser is total on arbitrary text" ~count:500
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))
    (fun src ->
      match Parser.parse src with Ok _ | Error _ -> true)

let prop_parser_total_on_mutations =
  (* valid programs with random single-character mutations must parse or
     fail cleanly, never raise *)
  QCheck2.Test.make ~name:"parser is total on mutated programs" ~count:500
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 255))
    (fun (pos, byte) ->
      let src = Bytes.of_string matvec_src in
      Bytes.set src (pos mod Bytes.length src) (Char.chr byte);
      match Parser.parse ~params:[ ("I", 4); ("K", 4) ] (Bytes.to_string src) with
      | Ok _ | Error _ -> true)

(* --- the full paper listings, textually --- *)

let test_full_mcc_listing () =
  (* Listing 12, as a pragma over C loops, at test sizes *)
  let src =
    {|
#pragma mdh out(res : fp32) \
            inp(img : fp32[2, 8, 5, 2], flt : fp32) \
            combine_ops(cc, cc, cc, cc, pw(add), pw(add), pw(add))
for (n = 0; n < N; n++)
 for (p = 0; p < P; p++)
  for (q = 0; q < Q; q++)
   for (k = 0; k < K; k++)
    for (r = 0; r < R; r++)
     for (s = 0; s < S; s++)
      for (c = 0; c < C; c++)
       res[n, p, q, k] = img[n, 2 * p + r, 2 * q + s, c] * flt[k, r, s, c];
|}
  in
  let params =
    [ ("N", 2); ("P", 3); ("Q", 2); ("K", 3); ("R", 3); ("S", 2); ("C", 2) ]
  in
  let dir = parse_ok ~params src in
  let md = Mdh_directive.Transform.to_md_hom_exn dir in
  let env = Mdh_workloads.Deep_learning.mcc.Mdh_workloads.Workload.gen params ~seed:5 in
  let got = Mdh_core.Semantics.exec md env in
  let expected =
    (Option.get Mdh_workloads.Deep_learning.mcc.Mdh_workloads.Workload.reference) params env
  in
  check Alcotest.bool "pragma MCC = workload MCC" true
    (Dense.approx_equal ~rel:1e-3 ~abs:1e-4
       (Buffer.data (Buffer.env_find got "res"))
       (Buffer.data (Buffer.env_find expected "res")))

(* --- diagnostics: golden error text and clause spans --- *)

(* Golden pin: the exact rendered diagnostic (including source position) for
   a fixed bad pragma. Mdh_analysis embeds this text in MDH016 diagnostics,
   so the wording and the position format are part of the tool's surface. *)
let test_golden_bad_pragma_diagnostic () =
  let src =
    {|
#pragma mdh out(w : fp32) inp(v : fp32) combine_ops(cc, pw(bogus))
for (i = 0; i < 4; i++)
  w[i] = v[i];
|}
  in
  let e = parse_err src in
  check Alcotest.string "golden diagnostic"
    "parse error at line 2, column 60: unknown customising function \"bogus\" \
     (the pragma frontend provides add, mul, min, max, bor; user-defined operators \
     need the embedded API)"
    (Parser.error_to_string e)

let test_parse_with_spans () =
  match Parser.parse_with_spans ~params:[ ("I", 8); ("K", 6) ] matvec_src with
  | Error e -> Alcotest.failf "unexpected parse error: %s" (Parser.error_to_string e)
  | Ok (dir, spans) ->
    let pos = Alcotest.pair Alcotest.int Alcotest.int in
    let p (q : Token.pos) = (q.Token.line, q.Token.col) in
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "same directive"
      [ ("i", 8); ("k", 6) ]
      (D.loops dir);
    check pos "pragma" (2, 1) (p spans.Parser.pragma_pos);
    check (Alcotest.list (Alcotest.pair Alcotest.string pos)) "buffers"
      [ ("w", (2, 17)); ("M", (2, 31)); ("v", (2, 41)) ]
      (List.map (fun (n, q) -> (n, p q)) spans.Parser.buffer_pos);
    check (Alcotest.list pos) "combine ops" [ (2, 63); (2, 67) ]
      (List.map p spans.Parser.combine_op_pos);
    check (Alcotest.list (Alcotest.pair Alcotest.string pos)) "loops"
      [ ("i", (3, 1)); ("k", (4, 3)) ]
      (List.map (fun (n, q) -> (n, p q)) spans.Parser.loop_pos);
    check (Alcotest.list pos) "statements" [ (5, 5) ]
      (List.map p spans.Parser.stmt_pos)

let suite =
  let tc = Alcotest.test_case in
  ( "pragma",
    [ tc "lexer tokens" `Quick test_lexer_tokens;
      tc "lexer comments" `Quick test_lexer_comments;
      tc "lexer positions" `Quick test_lexer_positions;
      tc "lexer stray char" `Quick test_lexer_rejects_stray_char;
      tc "lexer line continuation" `Quick test_lexer_line_continuation;
      tc "parse matvec structure" `Quick test_parse_matvec_structure;
      tc "parse = embedded API" `Quick test_parse_matches_embedded_directive;
      tc "parse declared shapes" `Quick test_parse_declared_shapes;
      tc "parse stencil floats" `Quick test_parse_stencil_with_floats;
      tc "parse braces and let" `Quick test_parse_braces_and_let;
      tc "parse ternary/min/cast" `Quick test_parse_ternary_min_cast;
      tc "parse ps operator" `Quick test_parse_ps_operator;
      tc "imperfect nest rejected downstream" `Quick
        test_imperfect_nest_parses_then_rejected;
      tc "error: missing out" `Quick test_error_missing_out;
      tc "error: unknown type" `Quick test_error_unknown_type;
      tc "error: unknown combine op" `Quick test_error_unknown_combine_op;
      tc "error: custom fn hint" `Quick test_error_custom_fn_hint;
      tc "error: nonzero lower bound" `Quick test_error_nonzero_lower_bound;
      tc "error: wrong loop var" `Quick test_error_wrong_loop_var;
      tc "error: unknown param" `Quick test_error_unknown_param;
      tc "error: unknown identifier" `Quick test_error_unknown_identifier;
      tc "error: undeclared buffer" `Quick test_error_undeclared_buffer_access;
      tc "error: position" `Quick test_error_position_is_meaningful;
      QCheck_alcotest.to_alcotest prop_parser_total_on_noise;
      QCheck_alcotest.to_alcotest prop_parser_total_on_mutations;
      tc "full MCC listing" `Quick test_full_mcc_listing;
      tc "golden bad-pragma diagnostic" `Quick test_golden_bad_pragma_diagnostic;
      tc "parse_with_spans clause positions" `Quick test_parse_with_spans ] )
