(* Tests for the plan-level profiler (lib/obs/profile.ml and its runtime
   instrumentation): disabled-mode purity — no cells appear and execution
   results are bit-identical with the flag off vs on; the per-level self
   times telescoping to the enclosing exec cell within the documented 5%;
   digest-keyed accumulation across repeated runs; and the cost model's
   level attribution lining up with the profiler's path vocabulary. *)

module Profile = Mdh_obs.Profile
module W = Mdh_workloads.Workload
module Schedule = Mdh_lowering.Schedule
module Plan = Mdh_lowering.Plan
module Plan_cache = Mdh_lowering.Plan_cache
module Lower = Mdh_lowering.Lower
module Cost = Mdh_lowering.Cost
module Pool = Mdh_runtime.Pool
module Exec = Mdh_runtime.Exec
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense

let check = Alcotest.check
let cpu = Mdh_machine.Device.xeon6140_like

(* every test must restore the process-wide flag and registry, or the
   bit-identity assertions see cells from earlier tests *)
let with_profiling f =
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    f

let find name =
  match Mdh_workloads.Catalog.find name with
  | Some w -> w
  | None -> Alcotest.fail ("unknown workload " ^ name)

(* the same host schedule mdhc profile and the plan-exec bench use: the
   deterministic per-device lowering default pinned to the pool's layer *)
let host_schedule md = { (Lower.mdh_default md cpu) with Schedule.used_layers = [ 0 ] }

let run_profiled pool (w : W.t) =
  let md = W.to_md_hom w w.W.test_params in
  let env = w.W.gen w.W.test_params ~seed:5 in
  let sched = host_schedule md in
  let plan =
    match Plan_cache.build md (Exec.host_device pool) sched with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  match Exec.run ~fastpath:false pool md sched env with
  | Ok env' -> (plan, env')
  | Error e -> Alcotest.fail e

let test_disabled_no_cells () =
  Profile.reset ();
  check Alcotest.bool "flag off" false (Profile.enabled ());
  Pool.with_pool (fun pool -> ignore (run_profiled pool (find "matmul")));
  check Alcotest.(list string) "no cells appear" [] (Profile.digests ())

(* profiling must never change what a run computes: execute the whole
   catalogue with the flag off and on and require exact value equality
   (not tolerance) on every output buffer *)
let test_catalogue_bit_identity () =
  Pool.with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          Profile.set_enabled false;
          let _, off = run_profiled pool w in
          let _, on = with_profiling (fun () -> run_profiled pool w) in
          List.iter
            (fun (o : Mdh_core.Md_hom.output) ->
              let data e = Buffer.data (Buffer.env_find e o.Mdh_core.Md_hom.out_name) in
              check Alcotest.bool
                (String.lowercase_ascii w.W.wl_name ^ " bit-identical")
                true
                (Dense.equal (data off) (data on)))
            md.Mdh_core.Md_hom.outputs)
        Mdh_workloads.Catalog.all)

(* the tree view's invariant: level self times (everything that is not a
   phase) sum to the enclosing exec cell — the telescoping is exact by
   construction, so 5% headroom only covers float summation order *)
let sum_matches_exec name =
  Pool.with_pool (fun pool ->
      with_profiling (fun () ->
          let plan, _ = run_profiled pool (find name) in
          let entries = Profile.snapshot (Plan.digest plan) in
          check Alcotest.bool (name ^ " has cells") true (entries <> []);
          let is_phase p = String.length p > 6 && String.sub p 0 6 = "phase:" in
          let exec = ref 0.0 and levels = ref 0.0 in
          List.iter
            (fun (e : Profile.entry) ->
              if e.Profile.path = "exec" then exec := e.Profile.total_s
              else if not (is_phase e.Profile.path) then
                levels := !levels +. e.Profile.total_s)
            entries;
          check Alcotest.bool (name ^ " exec cell recorded") true (!exec > 0.0);
          let err = Float.abs (!levels -. !exec) /. !exec in
          if err > 0.05 then
            Alcotest.failf "%s: level sum %.9f vs exec %.9f (%.1f%% off)" name
              !levels !exec (100.0 *. err)))

let test_sum_specializer () = sum_matches_exec "matmul"
let test_sum_walker () = sum_matches_exec "prl"

let test_digest_accumulation () =
  Pool.with_pool (fun pool ->
      with_profiling (fun () ->
          let w = find "matvec" in
          let plan, _ = run_profiled pool w in
          let digest = Plan.digest plan in
          let exec_entry () =
            match
              List.find_opt
                (fun e -> e.Profile.path = "exec")
                (Profile.snapshot digest)
            with
            | Some e -> e
            | None -> Alcotest.fail "no exec cell"
          in
          let once = exec_entry () in
          ignore (run_profiled pool w);
          let twice = exec_entry () in
          check Alcotest.int "counts double" (2 * once.Profile.count)
            twice.Profile.count;
          check Alcotest.bool "time accumulates" true
            (twice.Profile.total_s > once.Profile.total_s);
          (* a different digest keys its own cells *)
          let other, _ = run_profiled pool (find "matmul") in
          check Alcotest.bool "second digest registered" true
            (List.mem (Plan.digest other) (Profile.digests ()))))

let test_add_and_time_primitives () =
  with_profiling (fun () ->
      Profile.add ~digest:"d" ~path:"L0" 0.25;
      Profile.add ~digest:"d" ~path:"L0" 0.25;
      Profile.add_n ~digest:"d" ~path:"leaf" ~count:10 1.0;
      let v = Profile.time ~digest:"d" ~path:"timed" (fun () -> 42) in
      check Alcotest.int "time returns" 42 v;
      match Profile.snapshot "d" with
      | [ l0; leaf; timed ] ->
        check Alcotest.string "order is registration" "L0" l0.Profile.path;
        check Alcotest.int "two samples" 2 l0.Profile.count;
        check (Alcotest.float 1e-9) "summed" 0.5 l0.Profile.total_s;
        check Alcotest.int "batched count" 10 leaf.Profile.count;
        check Alcotest.bool "timed nonneg" true (timed.Profile.total_s >= 0.0)
      | es -> Alcotest.failf "expected 3 cells, got %d" (List.length es))

(* the model side of the tree view: fractions are a distribution and the
   paths speak the profiler's vocabulary (L<i> in level order, then leaf) *)
let test_level_attribution_paths () =
  let w = find "matmul" in
  let md = W.to_md_hom w w.W.test_params in
  let plan =
    match Plan_cache.build md cpu (host_schedule md) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let shares = Cost.level_attribution plan in
  let total = List.fold_left (fun a s -> a +. s.Cost.ls_fraction) 0.0 shares in
  check (Alcotest.float 1e-9) "fractions sum to 1" 1.0 total;
  List.iter
    (fun s ->
      check Alcotest.bool "fraction in (0,1]" true
        (s.Cost.ls_fraction > 0.0 && s.Cost.ls_fraction <= 1.0))
    shares;
  let expected_paths =
    List.mapi (fun i _ -> "L" ^ string_of_int i) plan.Plan.levels @ [ "leaf" ]
  in
  check
    Alcotest.(list string)
    "paths match profiler addressing" expected_paths
    (List.map (fun s -> s.Cost.ls_path) shares)

let suite =
  let tc = Alcotest.test_case in
  ( "profile",
    [ tc "disabled mode creates no cells" `Quick test_disabled_no_cells;
      tc "catalogue bit-identity off vs on" `Slow test_catalogue_bit_identity;
      tc "level sum = exec cell (specializer)" `Quick test_sum_specializer;
      tc "level sum = exec cell (walker)" `Quick test_sum_walker;
      tc "digest-keyed accumulation" `Quick test_digest_accumulation;
      tc "add/add_n/time primitives" `Quick test_add_and_time_primitives;
      tc "cost attribution paths and sum" `Quick test_level_attribution_paths ] )
