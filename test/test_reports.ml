(* Tests for the evaluation-report generators: the regenerated tables must
   carry the paper's structure and key findings (row coverage, the typed
   failure cells, the headline speedup directions), so the figures cannot
   silently regress. *)

module Table = Mdh_support.Table
module Device = Mdh_machine.Device
open Mdh_reports

let check = Alcotest.check

let speedup_of cell =
  (* "5.39x" -> 5.39; fails the test on a FAIL/n-a cell *)
  match float_of_string_opt (String.sub cell 0 (String.length cell - 1)) with
  | Some x -> x
  | None -> Alcotest.failf "not a speedup cell: %S" cell

let find_row table ~computation ~inp =
  let rows = Table.rows table in
  match
    List.find_index
      (fun cells ->
        match cells with
        | c :: i :: _ -> String.equal c computation && String.equal i inp
        | _ -> false)
      rows
  with
  | Some i -> i
  | None -> Alcotest.failf "no row %s/%s" computation inp

(* --- Figure 3 --- *)

let fig3 = lazy (Figure3.table ())

let test_figure3_shape () =
  let t = Lazy.force fig3 in
  check (Alcotest.list Alcotest.string) "headers"
    [ "Computation"; "Iter. Space"; "Red. Dim."; "Data Acc."; "Inp."; "Sizes";
      "Basic Type"; "Domain" ]
    (Table.headers t);
  (* 11 computations, 20 input rows *)
  check Alcotest.int "rows" 20 (List.length (Table.rows t))

let test_figure3_key_cells () =
  let t = Lazy.force fig3 in
  check Alcotest.string "dot injective" "Inj." (Table.cell t ~row:0 ~col:"Data Acc.");
  check Alcotest.string "dot 1D" "1D" (Table.cell t ~row:0 ~col:"Iter. Space");
  (* MCC_Caps is the 10D row (figure-3 rows carry the name on the first
     input row only) *)
  let caps =
    match
      List.find_index (fun cells -> List.hd cells = "MCC_Caps") (Table.rows t)
    with
    | Some i -> i
    | None -> Alcotest.fail "no MCC_Caps row"
  in
  check Alcotest.string "caps 10D" "10D" (Table.cell t ~row:caps ~col:"Iter. Space")

(* --- Figure 4 --- *)

let fig4_gpu = lazy (Figure4.table Device.a100_like)
let fig4_cpu = lazy (Figure4.table Device.xeon6140_like)

let test_figure4_row_coverage () =
  (* every Figure 3 computation/input appears on both devices *)
  List.iter
    (fun t ->
      check Alcotest.int "20 rows" 20 (List.length (Table.rows t)))
    [ Lazy.force fig4_gpu; Lazy.force fig4_cpu ]

let test_figure4_gpu_failures () =
  let t = Lazy.force fig4_gpu in
  let dot = find_row t ~computation:"Dot" ~inp:"1" in
  check Alcotest.string "ppcg dot" "FAIL:no-par" (Table.cell t ~row:dot ~col:"PPCG");
  let mcc = find_row t ~computation:"MCC" ~inp:"1" in
  check Alcotest.string "ppcg mcc" "FAIL:resources" (Table.cell t ~row:mcc ~col:"PPCG");
  let prl = find_row t ~computation:"PRL" ~inp:"1" in
  check Alcotest.string "tvm prl" "FAIL:reducer" (Table.cell t ~row:prl ~col:"TVM");
  check Alcotest.string "no vendor prl" "n/a" (Table.cell t ~row:prl ~col:"cuBLAS/cuDNN")

let test_figure4_cpu_failures () =
  let t = Lazy.force fig4_cpu in
  let prl = find_row t ~computation:"PRL" ~inp:"1" in
  check Alcotest.string "pluto prl" "FAIL:polyhedra" (Table.cell t ~row:prl ~col:"Pluto")

let test_figure4_headline_directions () =
  let gpu = Lazy.force fig4_gpu in
  (* CCSD(T) vs OpenACC: the paper's >150x *)
  let ccsdt = find_row gpu ~computation:"CCSD(T)" ~inp:"1" in
  check Alcotest.bool "openacc ccsdt huge" true
    (speedup_of (Table.cell gpu ~row:ccsdt ~col:"OpenACC") > 100.0);
  (* vendor competitive on square matmul, beaten on the DL shapes *)
  let mm1 = find_row gpu ~computation:"MatMul" ~inp:"1" in
  let vendor_sq = speedup_of (Table.cell gpu ~row:mm1 ~col:"cuBLAS/cuDNN") in
  check Alcotest.bool "vendor square competitive" true (vendor_sq > 0.7 && vendor_sq < 1.3);
  let mmt = find_row gpu ~computation:"MatMul^T" ~inp:"1" in
  check Alcotest.bool "vendor beaten off-shape" true
    (speedup_of (Table.cell gpu ~row:mmt ~col:"cuBLAS/cuDNN") > 2.0);
  (* PRL shape study *)
  let prl1 = find_row gpu ~computation:"PRL" ~inp:"1" in
  let prl2 = find_row gpu ~computation:"PRL" ~inp:"2" in
  check Alcotest.bool "prl inp1 >> inp2" true
    (speedup_of (Table.cell gpu ~row:prl1 ~col:"OpenACC")
    > 4.0 *. speedup_of (Table.cell gpu ~row:prl2 ~col:"OpenACC"))

let test_figure4_no_baseline_beats_mdh () =
  List.iter
    (fun (t, cols) ->
      List.iteri
        (fun row cells ->
          ignore cells;
          List.iter
            (fun col ->
              let cell = Table.cell t ~row ~col in
              if String.length cell > 0 && cell.[String.length cell - 1] = 'x' then
                check Alcotest.bool
                  (Printf.sprintf "row %d %s >= 0.95" row col)
                  true
                  (speedup_of cell >= 0.95))
            cols)
        (Table.rows t))
    [ (Lazy.force fig4_gpu, [ "OpenACC"; "PPCG"; "PPCG(ATF)"; "TVM" ]);
      (Lazy.force fig4_cpu, [ "OpenMP"; "Pluto"; "Pluto(ATF)"; "Numba"; "TVM" ]) ]

(* --- failure matrix --- *)

let test_failure_matrix () =
  let t = Failures.table () in
  (* 11 figure-3 workloads + MBBS + Jacobi1D + KMeans *)
  check Alcotest.int "rows" 14 (List.length (Table.rows t));
  let row name =
    match
      List.find_index (fun cells -> List.hd cells = name) (Table.rows t)
    with
    | Some i -> i
    | None -> Alcotest.failf "no row %s" name
  in
  check Alcotest.string "MDH compiles everything" "ok"
    (Table.cell t ~row:(row "MBBS") ~col:"MDH");
  check Alcotest.string "TVM rejects MBBS" "FAIL:reducer"
    (Table.cell t ~row:(row "MBBS") ~col:"TVM");
  check Alcotest.string "vendor n/a for stencils" "n/a"
    (Table.cell t ~row:(row "Jacobi_3D") ~col:"Vendor")

(* --- prl study --- *)

let test_prl_study_occupancy () =
  let t = Prl_study.table () in
  (* MDH keeps two orders of magnitude more units busy than OpenACC on Inp.1 *)
  let rows = Table.rows t in
  let units system inp =
    match
      List.find_opt
        (fun cells -> List.nth cells 4 = system && List.hd cells = inp)
        rows
    with
    | Some cells -> int_of_string (List.nth cells 7)
    | None -> Alcotest.failf "no %s row" system
  in
  check Alcotest.bool "MDH >> OpenACC units on Inp.1" true
    (units "MDH" "1" > 50 * units "OpenACC" "1")

(* --- portability scores --- *)

let test_portability_scores () =
  let scores = Portability.scores () in
  let find name = List.find (fun s -> s.Portability.system = name) scores in
  let mdh = find "MDH" in
  check Alcotest.int "MDH supports everything" mdh.Portability.total
    mdh.Portability.supported;
  check Alcotest.bool "MDH strict PP near 1" true (mdh.Portability.strict > 0.9);
  (* every baseline misses cases (wrong device or typed failure), so strict
     PP collapses to 0 — the portability argument *)
  List.iter
    (fun s ->
      if s.Portability.system <> "MDH" then begin
        check Alcotest.bool (s.Portability.system ^ " strict 0") true
          (s.Portability.strict = 0.0);
        check Alcotest.bool
          (s.Portability.system ^ " supported-case PP below MDH")
          true
          (s.Portability.supported_only < mdh.Portability.strict)
      end)
    scores

(* --- transfer study --- *)

let test_transfer_study () =
  let t = Transfer_study.table () in
  let slowdown computation inp =
    let row = find_row t ~computation ~inp in
    speedup_of (Table.cell t ~row ~col:"slowdown")
  in
  (* streaming kernels are transfer-dominated; compute-dense ones amortise *)
  check Alcotest.bool "dot transfer-dominated" true (slowdown "Dot" "1" > 20.0);
  check Alcotest.bool "square matmul amortises" true (slowdown "MatMul" "1" < 5.0);
  check Alcotest.bool "prl amortises" true (slowdown "PRL" "2" < 2.0)

let suite =
  let tc = Alcotest.test_case in
  ( "reports",
    [ tc "figure3 shape" `Quick test_figure3_shape;
      tc "figure3 key cells" `Quick test_figure3_key_cells;
      tc "figure4 row coverage" `Slow test_figure4_row_coverage;
      tc "figure4 gpu failures" `Slow test_figure4_gpu_failures;
      tc "figure4 cpu failures" `Slow test_figure4_cpu_failures;
      tc "figure4 headline directions" `Slow test_figure4_headline_directions;
      tc "figure4 no baseline beats MDH" `Slow test_figure4_no_baseline_beats_mdh;
      tc "failure matrix" `Quick test_failure_matrix;
      tc "prl study occupancy" `Slow test_prl_study_occupancy;
      tc "portability scores" `Slow test_portability_scores;
      tc "transfer study directions" `Slow test_transfer_study ] )
