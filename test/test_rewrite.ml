(* The verified equality-saturation pass (mdhc optimize).

   Correctness is pinned the way PR 5/6 pinned the executor: rewritten
   computations and plans must be bit-identical to Semantics.exec across
   the whole catalogue under pinned-random legal schedules, on the
   interpreter walker; on the specializer backend the rewritten plan must
   reproduce the raw plan's bits exactly (that backend accumulates in
   double, so Semantics.exec is its tolerance baseline, not its bitwise
   one). The justification discipline is pinned negatively: no
   algebra-gated rule may fire on an operator whose Opcheck report lacks
   the property — the falsely-commutative "first" fixture is the witness
   — nor on a declared-but-unverified annotation, nor on an inexact float
   domain (builtin min/max excepted). *)

module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Scalar = Mdh_tensor.Scalar
module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Transform = Mdh_directive.Transform
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Plan = Mdh_lowering.Plan
module Plan_cache = Mdh_lowering.Plan_cache
module Cost = Mdh_lowering.Cost
module Device = Mdh_machine.Device
module Rewrite = Mdh_rewrite.Rewrite
module Opcheck = Mdh_analysis.Opcheck
module Opcheck_oracle = Mdh_analysis.Opcheck_oracle
module Json_in = Mdh_support.Json_in
module Rng = Mdh_support.Rng
open Mdh_runtime

let check = Alcotest.check
let with_pool f = Pool.with_pool ~num_domains:3 f
let cpu = Device.xeon6140_like
let gpu = Device.a100_like
let oracle () = Opcheck_oracle.oracle ()

let outputs_agree ~bitwise md a b =
  List.for_all
    (fun (o : Md_hom.output) ->
      let da = Buffer.data (Buffer.env_find a o.Md_hom.out_name) in
      let db = Buffer.data (Buffer.env_find b o.Md_hom.out_name) in
      if bitwise then Dense.equal da db
      else Dense.approx_equal ~rel:1e-4 ~abs:1e-5 da db)
    md.Md_hom.outputs

let optimize_exn ?(dev = cpu) md sched =
  match Rewrite.optimize ~oracle:(oracle ()) md dev Cost.tuned_codegen sched with
  | Ok r -> r
  | Error e -> Alcotest.failf "optimize: %s" e

(* --- rewritten plans are bit-identical to Semantics.exec (interpreter) --- *)

let test_catalogue_rewritten_bitwise_interp () =
  (* every catalogue workload: (a) the saturated computation evaluates to
     Semantics.exec's exact bits under the sequential semantics — CSE
     evaluates hoisted subexpressions once, identities never round; and
     (b) under pinned-random legal schedules the saturated (computation,
     plan) pair through the generic walker reproduces the raw pair's bits
     exactly — the rewrite is invisible to the backend. (A parallel
     schedule regroups float partials, so bitwise against the sequential
     semantics is the raw walker's own contract only where it holds; the
     rewrite must never move the result a single bit further.) *)
  let rng = Rng.create 20261 in
  with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let env = w.W.gen w.W.test_params ~seed:23 in
          let expected = Semantics.exec md env in
          let r_seq = optimize_exn md (Schedule.sequential md) in
          check Alcotest.bool (w.W.wl_name ^ ": saturated semantics bitwise")
            true
            (outputs_agree ~bitwise:true md
               (Semantics.exec r_seq.Rewrite.r_md env)
               expected);
          let tried = ref 0 and draws = ref 0 in
          while !tried < 2 && !draws < 50 do
            incr draws;
            match Test_plan_exec.random_schedule rng md cpu with
            | None -> ()
            | Some sched ->
              incr tried;
              let r = optimize_exn md sched in
              let walk plan pmd =
                match
                  Exec.run_with_plan ~fastpath:false ~specialize:false pool
                    plan pmd env
                with
                | Ok e -> e
                | Error e -> Alcotest.failf "%s: walker: %s" w.W.wl_name e
              in
              let raw = walk r.Rewrite.r_raw_plan md in
              let got = walk r.Rewrite.r_plan r.Rewrite.r_md in
              check Alcotest.bool
                (Printf.sprintf "%s under %s: rewritten==raw bits" w.W.wl_name
                   (Schedule.to_string sched))
                true
                (outputs_agree ~bitwise:true md got raw);
              check Alcotest.bool
                (Printf.sprintf "%s under %s: rewritten~=semantics" w.W.wl_name
                   (Schedule.to_string sched))
                true
                (outputs_agree ~bitwise:false md got expected)
          done;
          check Alcotest.bool (w.W.wl_name ^ ": legal draws found") true
            (!tried > 0))
        Catalog.all)

(* --- ... and on the specializer backend --- *)

let test_catalogue_rewritten_specializer () =
  (* where the specializer accepts the plan, the rewritten plan must
     compute exactly the raw plan's bits (the rewrite is invisible to the
     backend's numerics) and stay tolerance-equal to Semantics.exec (the
     backend accumulates in double, so bitwise against the interpreter is
     not its contract — see test_specializer) *)
  let rng = Rng.create 20262 in
  with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let env = w.W.gen w.W.test_params ~seed:23 in
          let expected = Semantics.exec md env in
          let tried = ref 0 and draws = ref 0 in
          while !tried < 2 && !draws < 50 do
            incr draws;
            match Test_plan_exec.random_schedule rng md cpu with
            | None -> ()
            | Some sched -> (
              let raw_plan =
                match Plan_cache.build md cpu sched with
                | Ok p -> p
                | Error e -> Alcotest.failf "plan build: %s" e
              in
              match Specializer.try_run pool raw_plan md env with
              | None -> () (* backend refuses this workload; covered above *)
              | Some raw ->
                incr tried;
                let r = optimize_exn md sched in
                (match
                   Specializer.try_run pool r.Rewrite.r_plan r.Rewrite.r_md env
                 with
                | None ->
                  Alcotest.failf "%s: specializer refused the rewritten plan"
                    w.W.wl_name
                | Some got ->
                  check Alcotest.bool
                    (Printf.sprintf "%s rewritten==raw bits" w.W.wl_name)
                    true
                    (outputs_agree ~bitwise:true md got raw);
                  check Alcotest.bool
                    (Printf.sprintf "%s rewritten~=semantics" w.W.wl_name)
                    true
                    (outputs_agree ~bitwise:false md got expected)))
          done)
        Catalog.all)

(* --- >=3 catalogue workloads with a justified cost-model win --- *)

let test_cost_improvement_on_three_workloads () =
  (* the acceptance pin: PRL (paper input, cpu), KMeans (paper input,
     gpu) and Gaussian_2D (test sizes, cpu) each report at least one
     justified rewrite together with a strict cost-model improvement *)
  let case name dev params =
    let w =
      match Catalog.find name with
      | Some w -> w
      | None -> Alcotest.failf "no workload %s" name
    in
    let md = W.to_md_hom w params in
    let r = optimize_exn ~dev md (Lower.mdh_default md dev) in
    check Alcotest.bool (name ^ ": >=1 rewrite applied") true
      (List.length r.Rewrite.r_applied >= 1);
    List.iter
      (fun (a : Rewrite.applied) ->
        check Alcotest.bool (name ^ ": rule is justified") true
          (String.length (Rewrite.justification_to_string a.Rewrite.ap_just) > 0))
      r.Rewrite.r_applied;
    check Alcotest.bool
      (Printf.sprintf "%s: model improved (%.3e -> %.3e)" name
         r.Rewrite.r_raw_seconds r.Rewrite.r_seconds)
      true
      (r.Rewrite.r_seconds < r.Rewrite.r_raw_seconds)
  in
  let paper w n =
    match Catalog.find w with
    | Some w -> List.assoc n w.W.paper_inputs
    | None -> Alcotest.failf "no workload %s" w
  in
  case "prl" cpu (paper "prl" "1");
  case "kmeans" gpu (paper "kmeans" "1");
  case "gaussian_2d" cpu
    (match Catalog.find "gaussian_2d" with
    | Some w -> w.W.test_params
    | None -> Alcotest.fail "no gaussian_2d")

(* --- no algebra-gated rule without a supporting Opcheck report --- *)

(* a single parallel reduction over int32 under one cpu layer: the plan
   carries a Tree_reduce with one cooperating item per reduction index,
   and the 54-element extent is not a power of two, so tree-balance fires
   whenever its justification gate opens *)
let reduce_md fn =
  Transform.to_md_hom_exn
    (D.make ~name:"reduce_fixture"
       ~out:[ D.buffer "r" Scalar.Int32 ]
       ~inp:[ D.buffer "x" Scalar.Int32 ]
       ~combine_ops:[ Combine.pw fn ]
       (D.for_ "k" 54
          (D.body [ D.assign "r" [ Expr.int 0 ] (Expr.read "x" [ Expr.idx "k" ]) ])))

let reduce_plan md =
  let sched =
    { (Lower.mdh_default md cpu) with
      Schedule.parallel_dims = [ 0 ];
      used_layers = [ 0 ] }
  in
  match Plan_cache.build md cpu sched with
  | Ok p -> p
  | Error e -> Alcotest.failf "reduce plan: %s" e

let tree_balance_fired applied =
  List.exists (fun (a : Rewrite.applied) -> a.Rewrite.ap_rule = "tree-balance") applied

let saturate_plan_with oracle md plan =
  snd (Rewrite.saturate_plan ~oracle md cpu Cost.tuned_codegen plan)

(* "first" is associative but NOT commutative: (a . b) . c = a . (b . c) = a *)
let first_fn ~commutative =
  Combine.custom ~name:"first" ~associative:true ~commutative (fun a _ -> a)

let test_no_reassociation_without_report () =
  let honest = first_fn ~commutative:false in
  let md = reduce_md honest in
  let plan = reduce_plan md in
  (* precondition: the fixture plan really offers a rebalanceable tree *)
  (match Plan.tree plan with
  | Some (_, _, items) ->
    check Alcotest.bool "fixture tree items non-power-of-two" true
      (items > 1 && items land (items - 1) <> 0)
  | None -> Alcotest.fail "fixture plan has no Tree_reduce level");
  (* positive control: with a verifying oracle and an honest declaration
     the rule fires, so the negative cases below have teeth *)
  check Alcotest.bool "honest op: tree-balance fires" true
    (tree_balance_fired (saturate_plan_with (oracle ()) md plan));
  (* the falsely-commutative witness: associativity itself is Proved, but
     the refuted commutativity declaration poisons the operator *)
  let lying = first_fn ~commutative:true in
  let md_lying = reduce_md lying in
  check Alcotest.bool "falsely-commutative op: no algebra rule fires" false
    (tree_balance_fired
       (saturate_plan_with (oracle ()) md_lying (reduce_plan md_lying)));
  (* declared-but-unverified is never a justification: under the pure
     oracle (no Opcheck reports at all) the same honest op must not
     reassociate *)
  check Alcotest.bool "no report, no reassociation" false
    (tree_balance_fired (saturate_plan_with Rewrite.pure_oracle md plan))

let test_float_reassociation_refused () =
  (* fp32 addition: Opcheck proves associativity on the exact sample
     domain, but the domain is inexact so the proof does not transfer —
     the engine must refuse *)
  let fp_md =
    Transform.to_md_hom_exn
      (D.make ~name:"fp_reduce_fixture"
         ~out:[ D.buffer "r" Scalar.Fp32 ]
         ~inp:[ D.buffer "x" Scalar.Fp32 ]
         ~combine_ops:[ Combine.pw (Combine.add Scalar.Fp32) ]
         (D.for_ "k" 54
            (D.body
               [ D.assign "r" [ Expr.int 0 ] (Expr.read "x" [ Expr.idx "k" ]) ])))
  in
  check Alcotest.bool "fp32 add: reassociation refused" false
    (tree_balance_fired (saturate_plan_with (oracle ()) fp_md (reduce_plan fp_md)));
  (* builtin min is selection — it never rounds, so the exemption holds
     even on floats *)
  let min_md =
    Transform.to_md_hom_exn
      (D.make ~name:"fp_min_fixture"
         ~out:[ D.buffer "r" Scalar.Fp32 ]
         ~inp:[ D.buffer "x" Scalar.Fp32 ]
         ~combine_ops:[ Combine.pw (Combine.min Scalar.Fp32) ]
         (D.for_ "k" 54
            (D.body
               [ D.assign "r" [ Expr.int 0 ] (Expr.read "x" [ Expr.idx "k" ]) ])))
  in
  check Alcotest.bool "fp32 min: reassociation allowed" true
    (tree_balance_fired (saturate_plan_with (oracle ()) min_md (reduce_plan min_md)));
  check Alcotest.bool "fp32 is not an exact domain" false
    (Rewrite.exact_scalar_domain Scalar.Fp32);
  check Alcotest.bool "int32 records are an exact domain" true
    (Rewrite.exact_scalar_domain
       (Scalar.Record [ ("a", Scalar.Int32); ("b", Scalar.Int64) ]))

(* --- hardened Opcheck sample domain (satellite) --- *)

let test_opcheck_hardened_samples () =
  let samples = Opcheck.samples Scalar.Fp32 in
  let bits v =
    match v with
    | Scalar.F32 f | Scalar.F64 f -> Some (Int64.bits_of_float f)
    | _ -> None
  in
  let has f =
    List.exists (fun v -> bits v = Some (Int64.bits_of_float f)) samples
  in
  (* both signed zeros, bitwise distinct, and the 2^20 magnitude extremes *)
  check Alcotest.bool "+0.0 sampled" true (has 0.0);
  check Alcotest.bool "-0.0 sampled (bitwise distinct)" true (has (-0.0));
  check Alcotest.bool "+2^20 sampled" true (has 1048576.0);
  check Alcotest.bool "-2^20 sampled" true (has (-1048576.0));
  (* the float add report stays associative on this exact-by-construction
     domain (the caveat the rewrite engine enforces: the proof is
     algebraic, not a statement about rounding on arbitrary floats) *)
  let report = Opcheck.verify ~ty:Scalar.Fp32 (Combine.add Scalar.Fp32) in
  (match report.Opcheck.associativity with
  | Opcheck.Verified n -> check Alcotest.bool "add assoc evaluations" true (n > 0)
  | _ -> Alcotest.fail "fp32 add should verify associative on the exact domain")

(* --- the optimize report: JSON well-formed under Json_in --- *)

let test_optimize_json_wellformed () =
  let w =
    match Catalog.find "prl" with Some w -> w | None -> Alcotest.fail "no prl"
  in
  let md = W.to_md_hom w w.W.test_params in
  let r = optimize_exn md (Lower.mdh_default md cpu) in
  let j = Json_in.parse (Rewrite.report_json ~name:"prl" ~device:"cpu" r) in
  check (Alcotest.option Alcotest.string) "schema" (Some "mdh-optimize/1")
    (Json_in.get_string j "schema");
  check (Alcotest.option Alcotest.string) "workload" (Some "prl")
    (Json_in.get_string j "workload");
  let applied =
    match Json_in.get_list j "applied" with
    | Some l -> l
    | None -> Alcotest.fail "applied missing"
  in
  check (Alcotest.option (Alcotest.float 0.1)) "n_applied"
    (Some (float_of_int (List.length applied)))
    (Json_in.get_float j "n_applied");
  check Alcotest.bool "has rewrites" true (List.length applied > 0);
  List.iter
    (fun a ->
      List.iter
        (fun field ->
          match Json_in.get_string a field with
          | Some s -> check Alcotest.bool (field ^ " non-empty") true (String.length s > 0)
          | None -> Alcotest.failf "applied entry lacks %s" field)
        [ "tier"; "rule"; "site"; "detail"; "kind"; "justification" ])
    applied;
  let num field =
    match Json_in.get_float j field with
    | Some f -> f
    | None -> Alcotest.failf "%s missing" field
  in
  check (Alcotest.float 1e-6) "improvement consistent"
    (1.0 -. (num "model_seconds" /. num "raw_model_seconds"))
    (num "improvement")

(* --- the lowering wiring: saturated plans are cached under new digests --- *)

let test_optimize_cached_roundtrip () =
  let w =
    match Catalog.find "kmeans" with
    | Some w -> w
    | None -> Alcotest.fail "no kmeans"
  in
  let md = W.to_md_hom w w.W.test_params in
  let sched = Lower.mdh_default md cpu in
  Rewrite.reset_cache_stats ();
  let r1 =
    match Rewrite.optimize_cached ~oracle:(oracle ()) md cpu Cost.tuned_codegen sched with
    | Ok r -> r
    | Error e -> Alcotest.failf "optimize_cached: %s" e
  in
  let r2 =
    match Rewrite.optimize_cached ~oracle:(oracle ()) md cpu Cost.tuned_codegen sched with
    | Ok r -> r
    | Error e -> Alcotest.failf "optimize_cached: %s" e
  in
  let stats = Rewrite.cache_stats () in
  check Alcotest.bool "second lookup hits" true (stats.Rewrite.n_hits >= 1);
  check Alcotest.string "same saturated digest"
    (Plan.digest r1.Rewrite.r_plan) (Plan.digest r2.Rewrite.r_plan);
  check Alcotest.bool "saturated digest differs from raw" true
    (Plan.digest r1.Rewrite.r_plan <> Plan.digest r1.Rewrite.r_raw_plan);
  (* the saturation never worsens the modelled cost *)
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      List.iter
        (fun dev ->
          let r = optimize_exn ~dev md (Lower.mdh_default md dev) in
          check Alcotest.bool (w.W.wl_name ^ ": cost never worsens") true
            (r.Rewrite.r_seconds <= r.Rewrite.r_raw_seconds *. (1.0 +. 1e-9)))
        [ cpu; gpu ])
    Catalog.all

let suite =
  ( "rewrite",
    [ Alcotest.test_case "catalogue rewritten bitwise (interp)" `Quick
        test_catalogue_rewritten_bitwise_interp;
      Alcotest.test_case "catalogue rewritten (specializer)" `Quick
        test_catalogue_rewritten_specializer;
      Alcotest.test_case "cost improvement on >=3 workloads" `Quick
        test_cost_improvement_on_three_workloads;
      Alcotest.test_case "no reassociation without report" `Quick
        test_no_reassociation_without_report;
      Alcotest.test_case "float reassociation refused" `Quick
        test_float_reassociation_refused;
      Alcotest.test_case "opcheck hardened samples" `Quick
        test_opcheck_hardened_samples;
      Alcotest.test_case "optimize json wellformed" `Quick
        test_optimize_json_wellformed;
      Alcotest.test_case "optimize cached + never worsens" `Quick
        test_optimize_cached_roundtrip ] )
