(* Tests for the domain pool, parallel primitives, float kernels, and the
   parallel plan executor. *)

module W = Mdh_workloads.Workload
module Buffer = Mdh_tensor.Buffer
module Schedule = Mdh_lowering.Schedule
open Mdh_runtime

let check = Alcotest.check

let with_pool f = Pool.with_pool ~num_domains:3 f

let test_parallel_for_covers_all () =
  with_pool (fun pool ->
      let n = 100_000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      check Alcotest.bool "each index exactly once" true
        (Array.for_all (( = ) 1) hits))

let test_parallel_for_empty () =
  with_pool (fun pool ->
      let hit = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> hit := true);
      check Alcotest.bool "no iterations" false !hit)

let test_parallel_for_exception_propagates () =
  with_pool (fun pool ->
      check Alcotest.bool "raises" true
        (try
           Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:100 (fun i ->
               if i = 37 then failwith "boom");
           false
         with Failure m -> m = "boom"))

let test_parallel_reduce_sum () =
  with_pool (fun pool ->
      let n = 1_000_000 in
      let total =
        Pool.parallel_reduce pool ~lo:0 ~hi:n ~map:(fun i -> i) ~combine:( + ) 0
      in
      check Alcotest.int "gauss" (n * (n - 1) / 2) total)

let test_parallel_reduce_ordered () =
  (* string concatenation is associative but not commutative: chunk order
     must be preserved *)
  with_pool (fun pool ->
      let n = 500 in
      let s =
        Pool.parallel_reduce pool ~grain:7 ~lo:0 ~hi:n
          ~map:(fun i -> string_of_int (i mod 10))
          ~combine:( ^ ) ""
      in
      let expected = String.concat "" (List.init n (fun i -> string_of_int (i mod 10))) in
      check Alcotest.string "in order" expected s)

let test_scan_matches_sequential () =
  with_pool (fun pool ->
      let rng = Mdh_support.Rng.create 1 in
      let xs = Array.init 10_001 (fun _ -> Mdh_support.Rng.int rng 100 - 50) in
      let expected =
        let out = Array.make (Array.length xs) 0 in
        let acc = ref 0 in
        Array.iteri (fun i x -> acc := !acc + x; out.(i) <- !acc) xs;
        out
      in
      check (Alcotest.array Alcotest.int) "scan" expected
        (Pool.scan_inclusive pool ( + ) xs))

let test_scan_singleton_and_empty () =
  with_pool (fun pool ->
      check (Alcotest.array Alcotest.int) "empty" [||] (Pool.scan_inclusive pool ( + ) [||]);
      check (Alcotest.array Alcotest.int) "one" [| 7 |] (Pool.scan_inclusive pool ( + ) [| 7 |]))

let test_run_in_parallel_order () =
  with_pool (fun pool ->
      let thunks = Array.init 20 (fun i () -> i * i) in
      check (Alcotest.array Alcotest.int) "ordered results"
        (Array.init 20 (fun i -> i * i))
        (Pool.run_in_parallel pool thunks))

let test_pool_reusable () =
  with_pool (fun pool ->
      for round = 1 to 5 do
        let acc = Atomic.make 0 in
        Pool.parallel_for pool ~lo:0 ~hi:1000 (fun _ -> ignore (Atomic.fetch_and_add acc 1));
        check Alcotest.int (Printf.sprintf "round %d" round) 1000 (Atomic.get acc)
      done)

let test_nested_submission_rejected () =
  with_pool (fun pool ->
      check Alcotest.bool "nested raises" true
        (try
           Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:8 (fun _ ->
               Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:8 (fun _ -> ()));
           false
         with Invalid_argument _ -> true);
      (* the pool stays usable afterwards *)
      let acc = Atomic.make 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ -> ignore (Atomic.fetch_and_add acc 1));
      check Alcotest.int "usable after" 100 (Atomic.get acc))

let test_raising_job_leaves_pool_usable () =
  (* regression: a raising job body used to leave [in_job] set and the job
     installed, poisoning every later submission *)
  with_pool (fun pool ->
      for round = 1 to 3 do
        check Alcotest.bool (Printf.sprintf "raises %d" round) true
          (try
             Pool.run_job pool (fun () -> failwith "boom");
             false
           with Failure m -> m = "boom");
        (* the pool accepts and completes new work after the failure *)
        let acc = Atomic.make 0 in
        Pool.parallel_for pool ~lo:0 ~hi:500 (fun _ -> ignore (Atomic.fetch_and_add acc 1));
        check Alcotest.int (Printf.sprintf "usable %d" round) 500 (Atomic.get acc)
      done)

let test_worker_exception_propagates () =
  (* regression: exceptions on worker domains were silently swallowed; only
     the caller's own share of a job could fail it. The job below raises on
     every domain except the caller's, so the re-raised failure can only
     have come from a worker. *)
  with_pool (fun pool ->
      let caller = Domain.self () in
      check Alcotest.bool "worker failure re-raised" true
        (try
           Pool.run_job pool (fun () ->
               if Domain.self () <> caller then failwith "worker-boom"
               else Unix.sleepf 0.02);
           false
         with Failure m -> m = "worker-boom");
      let acc = Atomic.make 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ -> ignore (Atomic.fetch_and_add acc 1));
      check Alcotest.int "usable after worker failure" 100 (Atomic.get acc))

let test_worker_thunk_exception_propagates () =
  (* run_in_parallel with a thunk that only fails when a worker (not the
     caller) executes it: the caller stalls on its first chunk so the
     workers drain the rest, and the failure must still surface *)
  with_pool (fun pool ->
      let caller = Domain.self () in
      let thunks =
        Array.init 64 (fun _ () ->
            if Domain.self () <> caller then failwith "thunk-boom"
            else Unix.sleepf 0.005)
      in
      check Alcotest.bool "raises" true
        (try
           ignore (Pool.run_in_parallel pool thunks);
           false
         with Failure m -> m = "thunk-boom"))

let test_zero_domain_pool_works () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      check Alcotest.int "workers" 1 (Pool.num_workers pool);
      let acc = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> acc := !acc + i);
      check Alcotest.int "serial fallback" 4950 !acc)

(* --- kernels --- *)

let rng_floats seed n =
  let rng = Mdh_support.Rng.create seed in
  Array.init n (fun _ -> Mdh_support.Rng.float rng 2.0 -. 1.0)

let farr = Alcotest.testable
    (fun ppf a -> Format.fprintf ppf "[%d floats]" (Array.length a))
    (fun a b ->
      Array.length a = Array.length b
      && Array.for_all2 (fun x y -> Mdh_support.Util.float_equal ~rel:1e-6 ~abs:1e-9 x y) a b)

let test_kernels_dot () =
  with_pool (fun pool ->
      let x = rng_floats 1 10_000 and y = rng_floats 2 10_000 in
      check (Alcotest.float 1e-6) "par = seq" (Kernels.dot_seq x y)
        (Kernels.dot_par pool x y))

let test_kernels_matvec () =
  with_pool (fun pool ->
      let m = 37 and k = 53 in
      let mat = rng_floats 3 (m * k) and v = rng_floats 4 k in
      check farr "par = seq" (Kernels.matvec_seq ~m ~k mat v)
        (Kernels.matvec_par pool ~m ~k mat v))

let test_kernels_matmul_variants_agree () =
  with_pool (fun pool ->
      let m = 33 and n = 29 and k = 41 in
      let a = rng_floats 5 (m * k) and b = rng_floats 6 (k * n) in
      let reference = Kernels.matmul_seq ~m ~n ~k a b in
      check farr "tiled = naive" reference (Kernels.matmul_tiled ~tile:8 ~m ~n ~k a b);
      check farr "parallel = naive" reference (Kernels.matmul_par pool ~tile:8 ~m ~n ~k a b))

let test_kernels_scan () =
  with_pool (fun pool ->
      let xs = rng_floats 7 9_999 in
      check farr "par = seq" (Kernels.scan_seq xs) (Kernels.scan_par pool xs))

let test_kernels_jacobi () =
  with_pool (fun pool ->
      let n = 12 in
      let x = rng_floats 8 (n * n * n) in
      check farr "par = seq" (Kernels.jacobi3d_seq ~n x) (Kernels.jacobi3d_par pool ~n x))

(* --- parallel plan executor --- *)

let test_exec_parallel_matches_sequential () =
  with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let env = w.W.gen w.W.test_params ~seed:9 in
          let expected = Exec.run_seq md env in
          let sched =
            { (Schedule.sequential md) with
              Schedule.parallel_dims = Mdh_lowering.Lower.parallelisable_dims md }
          in
          match Exec.run pool md sched env with
          | Error e -> Alcotest.failf "%s: %s" w.W.wl_name e
          | Ok got ->
            List.iter
              (fun (o : Mdh_core.Md_hom.output) ->
                check Alcotest.bool
                  (Printf.sprintf "%s/%s" w.W.wl_name o.Mdh_core.Md_hom.out_name)
                  true
                  (Mdh_tensor.Dense.approx_equal ~rel:1e-4 ~abs:1e-5
                     (Buffer.data (Buffer.env_find got o.Mdh_core.Md_hom.out_name))
                     (Buffer.data (Buffer.env_find expected o.Mdh_core.Md_hom.out_name))))
              md.Mdh_core.Md_hom.outputs)
        Mdh_workloads.Catalog.all)

let test_exec_reference_agrees_with_workload_oracles () =
  List.iter
    (fun (w : W.t) ->
      match w.W.reference with
      | None -> ()
      | Some oracle ->
        let md = W.to_md_hom w w.W.test_params in
        let env = w.W.gen w.W.test_params ~seed:123 in
        let got = Exec.run_seq md env in
        let expected = oracle w.W.test_params env in
        List.iter
          (fun (o : Mdh_core.Md_hom.output) ->
            check Alcotest.bool
              (Printf.sprintf "%s/%s" w.W.wl_name o.Mdh_core.Md_hom.out_name)
              true
              (Mdh_tensor.Dense.approx_equal ~rel:1e-3 ~abs:1e-4
                 (Buffer.data (Buffer.env_find got o.Mdh_core.Md_hom.out_name))
                 (Buffer.data (Buffer.env_find expected o.Mdh_core.Md_hom.out_name))))
          md.Mdh_core.Md_hom.outputs)
    Mdh_workloads.Catalog.all

let suite =
  let tc = Alcotest.test_case in
  ( "runtime",
    [ tc "parallel_for covers all" `Quick test_parallel_for_covers_all;
      tc "parallel_for empty" `Quick test_parallel_for_empty;
      tc "parallel_for exceptions" `Quick test_parallel_for_exception_propagates;
      tc "parallel_reduce sum" `Quick test_parallel_reduce_sum;
      tc "parallel_reduce ordered" `Quick test_parallel_reduce_ordered;
      tc "scan matches sequential" `Quick test_scan_matches_sequential;
      tc "scan edge cases" `Quick test_scan_singleton_and_empty;
      tc "run_in_parallel order" `Quick test_run_in_parallel_order;
      tc "pool reusable" `Quick test_pool_reusable;
      tc "nested submission rejected" `Quick test_nested_submission_rejected;
      tc "raising job leaves pool usable" `Quick test_raising_job_leaves_pool_usable;
      tc "worker exception propagates" `Quick test_worker_exception_propagates;
      tc "worker thunk exception propagates" `Quick test_worker_thunk_exception_propagates;
      tc "zero-domain pool" `Quick test_zero_domain_pool_works;
      tc "kernel dot" `Quick test_kernels_dot;
      tc "kernel matvec" `Quick test_kernels_matvec;
      tc "kernel matmul variants" `Quick test_kernels_matmul_variants_agree;
      tc "kernel scan" `Quick test_kernels_scan;
      tc "kernel jacobi3d" `Quick test_kernels_jacobi;
      tc "parallel exec = sequential (all workloads)" `Slow
        test_exec_parallel_matches_sequential;
      tc "exec agrees with hand oracles" `Slow
        test_exec_reference_agrees_with_workload_oracles ] )
