(* mdhd robustness contract, in-process: admission control and load
   shedding, deadline suspension with bit-identical resume, crash
   containment under injected serve.* faults, frame/timeout guards, and
   graceful drain. The daemon binary's end-to-end behaviour (signals,
   exit codes) is pinned by scripts/check.sh's serve stage; these tests
   pin the Server/Protocol/Client semantics the binary is built from. *)

module Server = Mdh_serve.Server
module Client = Mdh_serve.Client
module Protocol = Mdh_serve.Protocol
module Jin = Mdh_support.Json_in
module J = Mdh_obs.Json
module Fault = Mdh_fault.Fault
module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Tuner = Mdh_atf.Tuner

let check = Alcotest.check
let cpu = Device.xeon6140_like

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdh-serve-%d-%d.sock" (Unix.getpid ()) !n)

(* run a server on its own thread for the duration of [f]; always drain
   and join so a failing test cannot leak a daemon into the next one *)
let with_server ?(configure = fun c -> c) f =
  Mdh_atf.Tuning_db.set_ambient None;
  let socket = fresh_socket () in
  let config = configure (Server.default_config ~socket) in
  let t =
    match Server.create config with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let thread = Thread.create Server.serve t in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown t;
      Thread.join thread;
      Fault.disarm ();
      (* remove leftover checkpoints so the state dir check stays honest *)
      (match Sys.readdir (Server.state_dir t) with
      | names ->
        Array.iter
          (fun n ->
            try Sys.remove (Filename.concat (Server.state_dir t) n)
            with Sys_error _ -> ())
          names;
        (try Unix.rmdir (Server.state_dir t) with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ()))
    (fun () -> f ~socket t)

let rpc ~socket line =
  match Client.rpc ~timeout_s:30.0 ~socket line with
  | Ok r -> r
  | Error e -> Alcotest.fail ("transport: " ^ e)

let expect_ok (r : Client.reply) =
  if not r.Client.ok then
    Alcotest.fail
      (Printf.sprintf "request failed: %s: %s"
         (Option.value ~default:"?" r.Client.code)
         (Option.value ~default:"?" r.Client.error));
  match r.Client.result with
  | Some body -> body
  | None -> Alcotest.fail "ok reply without result"

let rstr body name =
  match Jin.get_string body name with
  | Some s -> s
  | None -> Alcotest.fail ("reply missing " ^ name)

(* --- protocol --- *)

let test_protocol_parse_and_envelope () =
  (match Protocol.parse_request {|{"op":"tune","id":42,"budget":7}|} with
  | Error e -> Alcotest.fail e
  | Ok req ->
    check Alcotest.string "op" "tune" req.Protocol.req_op;
    check (Alcotest.option Alcotest.int) "int field" (Some 7)
      (Protocol.int_field req "budget");
    let ok = Protocol.ok_reply (Some req) ~op:"tune" [ ("x", "1") ] in
    check Alcotest.string "id echoed" "42"
      (match Jin.parse ok with
      | Jin.Obj kvs -> (
        match List.assoc "id" kvs with
        | Jin.Num f -> Printf.sprintf "%.0f" f
        | _ -> "?")
      | _ -> "?");
    let err = Protocol.error_reply ~retry_after_s:0.25 ~request:req
        ~code:"overloaded" "queue full"
    in
    check (Alcotest.option (Alcotest.float 1e-12)) "retry hint" (Some 0.25)
      (Jin.get_float (Jin.parse err) "retry_after_s"));
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Ok _ -> Alcotest.fail ("accepted bad request: " ^ line)
      | Error _ -> ())
    [ "not json"; "[1,2]"; {|{"id":1}|}; {|{"op":7}|} ]

let test_protocol_number_round_trip () =
  List.iter
    (fun f ->
      let s = Protocol.number f in
      match float_of_string_opt s with
      | Some g -> check (Alcotest.float 0.0) ("round trip " ^ s) f g
      | None -> Alcotest.fail ("unparsable number " ^ s))
    [ 0.0; 1.0; -3.5; 0.00238926; 1.7976931348623157e308; 4.9e-324;
      0.1 +. 0.2 ]

(* --- request handling --- *)

let test_basic_ops () =
  with_server (fun ~socket _ ->
      let health = expect_ok (rpc ~socket {|{"op":"health"}|}) in
      check Alcotest.string "status" "ok" (rstr health "status");
      let plan =
        expect_ok
          (rpc ~socket {|{"op":"plan","workload":"matvec","device":"cpu"}|})
      in
      let matvec = Mdh_workloads.Linalg.matvec in
      let md = W.to_md_hom matvec matvec.W.test_params in
      let sched = Mdh_lowering.Lower.mdh_default md cpu in
      let plan_ref =
        match Mdh_lowering.Plan_cache.build md cpu sched with
        | Ok p -> p
        | Error e -> Alcotest.fail e
      in
      check Alcotest.string "plan digest matches local lowering"
        (Mdh_lowering.Plan.digest plan_ref)
        (rstr plan "digest");
      let exec =
        expect_ok
          (rpc ~socket {|{"op":"exec","workload":"dot","seed":3}|})
      in
      check (Alcotest.option Alcotest.bool) "oracle checked" (Some true)
        (Jin.get_bool exec "checked");
      let chk =
        expect_ok (rpc ~socket {|{"op":"check","workload":"matvec"}|})
      in
      check (Alcotest.option Alcotest.(float 0.0)) "no errors" (Some 0.0)
        (Jin.get_float chk "errors");
      let m = rpc ~socket {|{"op":"metrics"}|} in
      (match Jin.member "registry" (expect_ok m) with
      | Some (Jin.Obj kvs) ->
        check Alcotest.bool "serve counters exported" true
          (List.mem_assoc "serve.requests" kvs)
      | _ -> Alcotest.fail "metrics registry is not an object");
      (* piggybacked metrics on any request *)
      let h2 = rpc ~socket {|{"op":"health","metrics":true}|} in
      check Alcotest.bool "metrics piggyback" true
        (Option.is_some h2.Client.metrics))

let test_structured_errors () =
  with_server (fun ~socket _ ->
      let bad op_line code =
        let r = rpc ~socket op_line in
        check Alcotest.bool "not ok" false r.Client.ok;
        check (Alcotest.option Alcotest.string) "code" (Some code)
          r.Client.code
      in
      bad {|{"op":"frobnicate"}|} "unknown_op";
      bad {|{"op":"tune"}|} "bad_request";
      bad {|{"op":"tune","workload":"nope"}|} "bad_request";
      bad {|{"op":"tune","workload":"matmul","device":"tpu"}|} "bad_request";
      bad {|{"op":"tune","workload":"matmul","resume":"../../etc/passwd"}|}
        "bad_request";
      bad "this is not json" "bad_request";
      (* a bad request never kills the connection's successor *)
      let h = expect_ok (rpc ~socket {|{"op":"health"}|}) in
      check Alcotest.string "daemon still healthy" "ok" (rstr h "status"))

let test_tune_matches_local () =
  with_server (fun ~socket _ ->
      let body =
        expect_ok
          (rpc ~socket
             {|{"op":"tune","workload":"matmul","device":"cpu","budget":40,"seed":2,"strategy":"anneal"}|})
      in
      check Alcotest.string "status" "tuned" (rstr body "status");
      let matmul = Mdh_workloads.Linalg.matmul in
      (* requests default to the "test" input set, like the handlers *)
      let md = W.to_md_hom matmul matmul.W.test_params in
      let reference =
        match
          Tuner.tune ~strategy:Tuner.Anneal ~budget:40 ~seed:2 ~saturate:true
            md cpu Cost.tuned_codegen
        with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      check Alcotest.string "schedule matches local tuner"
        (Schedule.to_string reference.Tuner.schedule)
        (rstr body "schedule");
      match Jin.get_float body "estimated_s" with
      | Some est ->
        check (Alcotest.float 0.0) "estimated_s exact over the wire"
          reference.Tuner.estimated_s est
      | None -> Alcotest.fail "no estimated_s")

let test_deadline_suspends_and_resumes_bit_identical () =
  with_server (fun ~socket t ->
      let req resume deadline =
        Printf.sprintf
          {|{"op":"tune","workload":"matmul","device":"cpu","budget":2000,"seed":5,"strategy":"anneal"%s%s}|}
          (if resume then {|,"resume":true|} else "")
          (match deadline with
          | Some d -> Printf.sprintf {|,"deadline_s":%g|} d
          | None -> "")
      in
      let suspended = expect_ok (rpc ~socket (req false (Some 1e-7))) in
      check Alcotest.string "suspended" "suspended" (rstr suspended "status");
      let token = rstr suspended "token" in
      check Alcotest.bool "checkpoint on disk" true
        (Sys.file_exists (Filename.concat (Server.state_dir t) token));
      (* a second suspended round must hand back the same token: the
         token is a pure function of the request *)
      let again = expect_ok (rpc ~socket (req true (Some 1e-7))) in
      check Alcotest.string "stable token" token (rstr again "token");
      let resumed = expect_ok (rpc ~socket (req true None)) in
      check Alcotest.string "resumed to completion" "tuned"
        (rstr resumed "status");
      check Alcotest.bool "checkpoint deleted on completion" false
        (Sys.file_exists (Filename.concat (Server.state_dir t) token));
      let matmul = Mdh_workloads.Linalg.matmul in
      let md = W.to_md_hom matmul matmul.W.test_params in
      let reference =
        match
          Tuner.tune ~strategy:Tuner.Anneal ~budget:2000 ~seed:5
            ~saturate:true md cpu Cost.tuned_codegen
        with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      check Alcotest.string "resume is bit-identical to uninterrupted"
        (Schedule.to_string reference.Tuner.schedule)
        (rstr resumed "schedule"))

let test_max_deadline_cap_applies () =
  with_server
    ~configure:(fun c -> { c with Server.max_deadline_s = Some 1e-7 })
    (fun ~socket _ ->
      let body =
        expect_ok
          (rpc ~socket
             {|{"op":"tune","workload":"matmul","device":"cpu","budget":2000,"seed":9,"strategy":"anneal"}|})
      in
      check Alcotest.string "server cap suspends an uncapped request"
        "suspended" (rstr body "status"))

(* --- admission control --- *)

let test_load_shedding () =
  with_server
    ~configure:(fun c -> { c with Server.workers = 1; max_queue = 0 })
    (fun ~socket _ ->
      (match Fault.configure "serve.handle:delay=700" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let slow = ref None in
      let th =
        Thread.create
          (fun () -> slow := Some (Client.rpc ~socket {|{"op":"health"}|}))
          ()
      in
      Thread.delay 0.3;
      (* the lone worker is stalled in the delayed handler: the accept
         loop must shed, not queue *)
      let r = rpc ~socket {|{"op":"health"}|} in
      check Alcotest.bool "shed reply not ok" false r.Client.ok;
      check (Alcotest.option Alcotest.string) "code" (Some "overloaded")
        r.Client.code;
      (match r.Client.retry_after_s with
      | Some s -> check Alcotest.bool "positive retry hint" true (s > 0.0)
      | None -> Alcotest.fail "shed reply has no retry_after_s");
      Thread.join th;
      Fault.disarm ();
      (match !slow with
      | Some (Ok sr) -> check Alcotest.bool "slow request served" true sr.Client.ok
      | Some (Error e) -> Alcotest.fail ("slow request: " ^ e)
      | None -> Alcotest.fail "slow request never finished");
      (* capacity freed: the next request is admitted again *)
      let h = expect_ok (rpc ~socket {|{"op":"health"}|}) in
      check Alcotest.string "recovered" "ok" (rstr h "status"))

(* --- fault containment --- *)

let test_handler_crash_is_contained () =
  with_server (fun ~socket _ ->
      (match Fault.configure "serve.handle:raise@1" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let r = rpc ~socket {|{"op":"health"}|} in
      check Alcotest.bool "crashed request not ok" false r.Client.ok;
      check (Alcotest.option Alcotest.string) "structured internal error"
        (Some "internal") r.Client.code;
      Fault.disarm ();
      let h = expect_ok (rpc ~socket {|{"op":"health"}|}) in
      check Alcotest.string "daemon survived the crash" "ok"
        (rstr h "status"))

let test_read_fault_is_absorbed () =
  with_server (fun ~socket _ ->
      (match Fault.configure "serve.read:raise@1" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match Client.rpc ~timeout_s:5.0 ~socket {|{"op":"health"}|} with
      | Ok r -> Alcotest.fail ("expected a dropped connection, got ok=" ^ string_of_bool r.Client.ok)
      | Error _ -> ());
      Fault.disarm ();
      let h = expect_ok (rpc ~socket {|{"op":"health"}|}) in
      check Alcotest.string "daemon survived the read fault" "ok"
        (rstr h "status"))

let test_frame_guard () =
  with_server
    ~configure:(fun c -> { c with Server.max_frame = 256 })
    (fun ~socket _ ->
      let huge =
        J.obj [ ("op", J.quote "health"); ("pad", J.quote (String.make 1024 'x')) ]
      in
      let r = rpc ~socket huge in
      check (Alcotest.option Alcotest.string) "frame guard"
        (Some "frame_too_large") r.Client.code;
      let h = expect_ok (rpc ~socket {|{"op":"health"}|}) in
      check Alcotest.string "daemon survived the oversize frame" "ok"
        (rstr h "status"))

(* --- lifecycle --- *)

let test_drain_removes_socket_and_refuses_double_bind () =
  Mdh_atf.Tuning_db.set_ambient None;
  let socket = fresh_socket () in
  let t =
    match Server.create (Server.default_config ~socket) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let thread = Thread.create Server.serve t in
  (* a live socket must not be stolen by a second daemon *)
  (match Server.create (Server.default_config ~socket) with
  | Ok _ -> Alcotest.fail "second daemon bound a live socket"
  | Error e ->
    check Alcotest.bool "names the conflict" true
      (String.length e > 0));
  ignore (rpc ~socket {|{"op":"health"}|});
  Server.request_shutdown t;
  Thread.join thread;
  check Alcotest.bool "socket removed on drain" false (Sys.file_exists socket);
  check Alcotest.bool "state dir removed when empty" false
    (Sys.file_exists (Server.state_dir t));
  check Alcotest.bool "served counted" true (Server.served t >= 1);
  (* ... and a fresh daemon can bind the same path again *)
  match Server.create (Server.default_config ~socket) with
  | Error e -> Alcotest.fail ("rebind after drain: " ^ e)
  | Ok t2 ->
    let th2 = Thread.create Server.serve t2 in
    Server.request_shutdown t2;
    Thread.join th2

let test_stale_socket_is_replaced () =
  Mdh_atf.Tuning_db.set_ambient None;
  let socket = fresh_socket () in
  (* fabricate a crashed daemon's leftover: a bound-then-abandoned socket *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;
  check Alcotest.bool "stale socket exists" true (Sys.file_exists socket);
  match Server.create (Server.default_config ~socket) with
  | Error e -> Alcotest.fail ("stale socket not replaced: " ^ e)
  | Ok t ->
    let th = Thread.create Server.serve t in
    let h = expect_ok (rpc ~socket {|{"op":"health"}|}) in
    check Alcotest.string "serving on the reclaimed path" "ok"
      (rstr h "status");
    Server.request_shutdown t;
    Thread.join th

let suite =
  ( "serve",
    [ Alcotest.test_case "protocol: parse and envelopes" `Quick
        test_protocol_parse_and_envelope;
      Alcotest.test_case "protocol: numbers round-trip exactly" `Quick
        test_protocol_number_round_trip;
      Alcotest.test_case "basic ops over the socket" `Quick test_basic_ops;
      Alcotest.test_case "structured errors, connection survives" `Quick
        test_structured_errors;
      Alcotest.test_case "remote tune = local tune" `Quick
        test_tune_matches_local;
      Alcotest.test_case "deadline suspends, resume is bit-identical" `Quick
        test_deadline_suspends_and_resumes_bit_identical;
      Alcotest.test_case "server-wide deadline cap" `Quick
        test_max_deadline_cap_applies;
      Alcotest.test_case "load shedding with retry hint" `Quick
        test_load_shedding;
      Alcotest.test_case "handler crash is contained" `Quick
        test_handler_crash_is_contained;
      Alcotest.test_case "read fault is absorbed" `Quick
        test_read_fault_is_absorbed;
      Alcotest.test_case "frame guard" `Quick test_frame_guard;
      Alcotest.test_case "drain removes socket, rebind works" `Quick
        test_drain_removes_socket_and_refuses_double_bind;
      Alcotest.test_case "stale socket is replaced" `Quick
        test_stale_socket_is_replaced ] )
