(* Differential harness for the plan-compiled specializer and the
   compiled-OpenMP-C backend (this PR's tentpole).

   Both backends are checked against Semantics.exec — the executable
   paper semantics — across the whole catalogue: the specializer under
   pinned-random legal schedules, the compiled C end to end through
   gcc when a C compiler is on PATH (an explicit SKIP line otherwise,
   never silently). The satellites ride along: commuted-multiplicand
   fast-path matching, hit-vs-error fast-path accounting with fallback,
   zero-extent executor semantics, digest-cache hit counting and the
   ?specialize:false escape hatch. *)

module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Scalar = Mdh_tensor.Scalar
module Index_fn = Mdh_tensor.Index_fn
module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Transform = Mdh_directive.Transform
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Plan_cache = Mdh_lowering.Plan_cache
module Device = Mdh_machine.Device
module Metrics = Mdh_obs.Metrics
module Fault = Mdh_fault.Fault
module Cc = Mdh_codegen.Cc
module Openmp_c = Mdh_codegen.Openmp_c
module Rng = Mdh_support.Rng
open Mdh_runtime

let check = Alcotest.check
let with_pool f = Pool.with_pool ~num_domains:3 f
let cpu = Device.xeon6140_like

let outputs_agree ?(rel = 1e-4) ?(abs = 1e-5) md a b =
  List.for_all
    (fun (o : Md_hom.output) ->
      let da = Buffer.data (Buffer.env_find a o.Md_hom.out_name) in
      let db = Buffer.data (Buffer.env_find b o.Md_hom.out_name) in
      Dense.approx_equal ~rel ~abs da db)
    md.Md_hom.outputs

let plan_of md sched =
  match Plan_cache.build md cpu sched with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan build: %s" e

(* --- the specializer computes the reference result, catalogue-wide --- *)

let test_specializer_matches_reference () =
  (* every workload x pinned-random legal schedules: Specializer.try_run
     agrees with Semantics.exec within the repository tolerance. PRL and
     KMeans are the computations it must refuse (records + a non-builtin
     reduction operator) — refusing is part of the contract. *)
  let rng = Rng.create 20260 in
  with_pool (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let md = W.to_md_hom w w.W.test_params in
          let env = w.W.gen w.W.test_params ~seed:17 in
          if List.mem (String.lowercase_ascii w.W.wl_name) [ "prl"; "kmeans" ]
          then begin
            let plan = plan_of md (Schedule.sequential md) in
            (match Specializer.supported plan md with
            | Ok () -> Alcotest.failf "%s reported specializable" w.W.wl_name
            | Error _ -> ());
            check Alcotest.bool (w.W.wl_name ^ " refused") true
              (Specializer.try_run pool plan md env = None)
          end
          else begin
            let expected = Semantics.exec md env in
            let tried = ref 0 and draws = ref 0 in
            while !tried < 3 && !draws < 50 do
              incr draws;
              match Test_plan_exec.random_schedule rng md cpu with
              | None -> ()
              | Some sched -> (
                incr tried;
                let plan = plan_of md sched in
                match Specializer.try_run pool plan md env with
                | None ->
                  Alcotest.failf "%s under %s: specializer refused (%s)"
                    w.W.wl_name (Schedule.to_string sched)
                    (match Specializer.supported plan md with
                    | Error e -> e
                    | Ok () -> "buffer binding failed")
                | Some got ->
                  check Alcotest.bool
                    (Printf.sprintf "%s under %s" w.W.wl_name
                       (Schedule.to_string sched))
                    true
                    (outputs_agree md got expected))
            done;
            check Alcotest.bool (w.W.wl_name ^ ": legal draws found") true
              (!tried > 0)
          end)
        Catalog.all)

(* --- digest-keyed memoization: second run is a hit, zero recompiles --- *)

let test_digest_cache_hits () =
  (* a fresh hom name guarantees a fresh digest, so the first run must
     miss+compile and the second must hit without recompiling; counters
     are process-wide, so everything is asserted as deltas *)
  let md =
    Transform.to_md_hom_exn
      (D.make ~name:"SpecCacheProbe"
         ~out:[ D.buffer "r" Scalar.Fp32 ]
         ~inp:[ D.buffer "x" Scalar.Fp32; D.buffer "y" Scalar.Fp32 ]
         ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
         (D.for_ "i" 6
            (D.for_ "k" 9
               (D.body
                  [ D.assign "r" [ Expr.idx "i" ]
                      Expr.(read "x" [ idx "i"; idx "k" ] * read "y" [ idx "k" ]) ]))))
  in
  let rng = Rng.create 4 in
  let env =
    Buffer.env_of_list
      [ W.float_buffer "x" rng [| 6; 9 |]; W.float_buffer "y" rng [| 9 |] ]
  in
  with_pool (fun pool ->
      let plan = plan_of md (Schedule.sequential md) in
      let s0 = Specializer.stats () in
      let run () =
        match Specializer.try_run pool plan md env with
        | Some got ->
          check Alcotest.bool "probe result" true
            (outputs_agree md got (Semantics.exec md env))
        | None -> Alcotest.fail "probe refused"
      in
      run ();
      let s1 = Specializer.stats () in
      check Alcotest.int "first run misses" (s0.misses + 1) s1.misses;
      check Alcotest.int "first run compiles" (s0.compiles + 1) s1.compiles;
      run ();
      let s2 = Specializer.stats () in
      check Alcotest.int "second run hits" (s1.hits + 1) s2.hits;
      check Alcotest.int "warm run recompiles nothing" s1.compiles s2.compiles)

(* --- ?specialize:false is a real escape hatch --- *)

let test_specialize_false_escape () =
  with_pool (fun pool ->
      let w = Option.get (Catalog.find "matmul") in
      let md = W.to_md_hom w w.W.test_params in
      let env = w.W.gen w.W.test_params ~seed:23 in
      let sched =
        { (Schedule.sequential md) with
          Schedule.parallel_dims = Lower.parallelisable_dims md }
      in
      let s0 = Specializer.stats () in
      (match Exec.run ~fastpath:false ~specialize:false pool md sched env with
      | Error e -> Alcotest.fail e
      | Ok got ->
        check Alcotest.bool "walker result" true
          (outputs_agree md got (Semantics.exec md env)));
      let s1 = Specializer.stats () in
      check Alcotest.int "no cache traffic" (s0.hits + s0.misses)
        (s1.hits + s1.misses))

(* --- commuted multiplicands still hit the fast-path kernels --- *)

let commuted_matmul =
  (* b[k][j] * a[i][k]: the textbook matmul with the operands of the
     multiplication swapped — semantically identical, and the bug this
     PR fixes is that the matcher only accepted the a-first spelling *)
  Transform.to_md_hom_exn
    (D.make ~name:"MatMulCommuted"
       ~out:[ D.buffer "c" Scalar.Fp32 ]
       ~inp:[ D.buffer "a" Scalar.Fp32; D.buffer "b" Scalar.Fp32 ]
       ~combine_ops:
         [ Combine.cc; Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
       (D.for_ "i" 6
          (D.for_ "j" 7
             (D.for_ "k" 8
                (D.body
                   [ D.assign "c"
                       [ Expr.idx "i"; Expr.idx "j" ]
                       Expr.(
                         read "b" [ idx "k"; idx "j" ] * read "a" [ idx "i"; idx "k" ]) ])))))

let commuted_matvec =
  Transform.to_md_hom_exn
    (D.make ~name:"MatVecCommuted"
       ~out:[ D.buffer "w" Scalar.Fp32 ]
       ~inp:[ D.buffer "M" Scalar.Fp32; D.buffer "v" Scalar.Fp32 ]
       ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
       (D.for_ "i" 7
          (D.for_ "k" 9
             (D.body
                [ D.assign "w" [ Expr.idx "i" ]
                    Expr.(read "v" [ idx "k" ] * read "M" [ idx "i"; idx "k" ]) ]))))

let test_commuted_operands_hit_fastpath () =
  let hits = Metrics.counter "runtime.kernels.fastpath_hits" in
  with_pool (fun pool ->
      let run md env =
        let sched =
          { (Schedule.sequential md) with
            Schedule.parallel_dims = Lower.parallelisable_dims md }
        in
        match Exec.run pool md sched env with
        | Error e -> Alcotest.fail e
        | Ok got ->
          check Alcotest.bool (md.Md_hom.hom_name ^ " correct") true
            (outputs_agree md got (Semantics.exec md env))
      in
      let rng = Rng.create 8 in
      let before = Metrics.value hits in
      run commuted_matmul
        (Buffer.env_of_list
           [ W.float_buffer "a" rng [| 6; 8 |]; W.float_buffer "b" rng [| 8; 7 |] ]);
      check Alcotest.int "commuted matmul hits the kernel" (before + 1)
        (Metrics.value hits);
      run commuted_matvec
        (Buffer.env_of_list
           [ W.float_buffer "M" rng [| 7; 9 |]; W.float_buffer "v" rng [| 9 |] ]);
      check Alcotest.int "commuted matvec hits the kernel" (before + 2)
        (Metrics.value hits);
      (* accepting both orders must not loosen the pattern: matmul^t reads
         b[j][k], which neither operand order makes a matmul *)
      let wt = Option.get (Catalog.find "matmul^t") in
      let mdt = W.to_md_hom wt wt.W.test_params in
      run mdt (wt.W.gen wt.W.test_params ~seed:8);
      check Alcotest.int "matmul^t still no false match" (before + 2)
        (Metrics.value hits))

(* --- a raising kernel is an error, not a hit, and the run degrades --- *)

let test_fastpath_error_falls_back () =
  let hits = Metrics.counter "runtime.kernels.fastpath_hits" in
  let errors = Metrics.counter "runtime.kernels.fastpath_errors" in
  with_pool (fun pool ->
      let w = Option.get (Catalog.find "dot") in
      let md = W.to_md_hom w w.W.test_params in
      let env = w.W.gen w.W.test_params ~seed:31 in
      let sched =
        { (Schedule.sequential md) with
          Schedule.parallel_dims = Lower.parallelisable_dims md }
      in
      let h0 = Metrics.value hits and e0 = Metrics.value errors in
      (* the kernel.run site raises inside the matched dot kernel (pool.job
         faults model dead workers and are absorbed by work stealing); the
         old code counted the hit and opened the span before running the
         kernel, so the abort was billed as a success *)
      (match Fault.configure "kernel.run:raise@1" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let result = Exec.run pool md sched env in
      Fault.disarm ();
      (match result with
      | Error e -> Alcotest.failf "no fallback, run failed: %s" e
      | Ok got ->
        check Alcotest.bool "degraded run still correct" true
          (outputs_agree md got (Semantics.exec md env)));
      check Alcotest.int "no hit recorded" h0 (Metrics.value hits);
      check Alcotest.int "one error recorded" (e0 + 1) (Metrics.value errors))

(* --- zero-extent iteration spaces: parallel = sequential = defined --- *)

let zero_extent_md =
  (* built directly: the directive front end has no reason to admit a
     zero-trip loop, but a tuner sweeping problem sizes can produce one,
     and the executor used to hand back never-written output buffers
     from the parallel path (zero jobs scheduled) *)
  {
    Md_hom.hom_name = "ZeroExtent";
    dims = [| "k" |];
    sizes = [| 0 |];
    combine_ops = [| Combine.pw (Combine.add Scalar.Fp32) |];
    inputs =
      [ { Md_hom.inp_name = "x";
          inp_ty = Scalar.Fp32;
          inp_shape = [| 4 |];
          accesses =
            [ { Md_hom.fn = Index_fn.identity 1; exprs = [ Expr.idx "k" ] } ] } ];
    outputs =
      [ { Md_hom.out_name = "r";
          out_ty = Scalar.Fp32;
          out_shape = [| 1 |];
          out_access =
            { Md_hom.fn =
                Index_fn.affine ~arity:1
                  [ Index_fn.coord ~coeffs:[| 0 |] ~offset:0 ];
              exprs = [ Expr.int 0 ] };
          value = Expr.(read "x" [ idx "k" ]) } ];
  }

let test_zero_extent_runs () =
  with_pool (fun pool ->
      let md = zero_extent_md in
      let rng = Rng.create 3 in
      let env = Buffer.env_of_list [ W.float_buffer "x" rng [| 4 |] ] in
      let seq = Exec.run_seq md env in
      let sched =
        { (Schedule.sequential md) with
          Schedule.parallel_dims = [ 0 ];
          Schedule.used_layers = [ 0 ] }
      in
      match Exec.run pool md sched env with
      | Error e -> Alcotest.failf "zero-extent run failed: %s" e
      | Ok got ->
        let out = Buffer.data (Buffer.env_find got "r") in
        check (Alcotest.float 0.0) "empty sum is the identity" 0.0
          (Scalar.to_float (Dense.get_linear out 0));
        check Alcotest.bool "parallel = sequential on zero extents" true
          (Dense.equal out (Buffer.data (Buffer.env_find seq "r"))))

(* --- generated C: reduction temporaries start at the operator identity --- *)

let reduction_md name op =
  Transform.to_md_hom_exn
    (D.make ~name
       ~out:[ D.buffer "r" Scalar.Fp32 ]
       ~inp:[ D.buffer "x" Scalar.Fp32 ]
       ~combine_ops:[ Combine.pw op ]
       (D.for_ "k" 11
          (D.body [ D.assign "r" [ Expr.int 0 ] Expr.(read "x" [ idx "k" ]) ])))

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_openmp_identity_init () =
  (* the miscompile this PR pins: every reduction temporary was seeded
     with 0, which absorbs a mul reduction and clamps max at zero *)
  let pin name op needle =
    match Openmp_c.generate (reduction_md name op) with
    | Error e ->
      Alcotest.failf "%s: %a" name Mdh_codegen.Kernel.pp_error e
    | Ok src ->
      check Alcotest.bool (name ^ " initialises with " ^ needle) true
        (contains src ("sum = " ^ needle ^ ";"))
  in
  pin "MaxReduce" (Combine.max Scalar.Fp32) "-INFINITY";
  pin "MulReduce" (Combine.mul Scalar.Fp32) "1";
  pin "AddReduce" (Combine.add Scalar.Fp32) "0";
  (* and end to end through gcc, where the wrong identity is observable *)
  if Cc.available () then
    List.iter
      (fun (name, op) ->
        let md = reduction_md name op in
        let rng = Rng.create 12 in
        let env = Buffer.env_of_list [ W.float_buffer "x" rng [| 11 |] ] in
        match Cc.execute md env with
        | Error e -> Alcotest.failf "%s: %s" name e
        | Ok got ->
          check Alcotest.bool (name ^ " compiled C correct") true
            (outputs_agree ~rel:1e-3 ~abs:1e-4 md got (Semantics.exec md env)))
      [ ("MaxReduce", Combine.max Scalar.Fp32);
        ("MulReduce", Combine.mul Scalar.Fp32);
        ("AddReduce", Combine.add Scalar.Fp32) ]
  else print_endline "test_specializer: SKIP compiled-C identity check (no gcc)"

(* --- compiled C = reference, catalogue-wide (gcc-gated) --- *)

(* what the Listing 2 C shape can express standalone: one output, at most
   one reduction loop, builtin operators, fp32 buffers throughout *)
let cc_expressible (md : Md_hom.t) =
  List.length md.Md_hom.outputs = 1
  && List.length (Md_hom.reduction_dims md) <= 1
  && Array.for_all
       (fun op ->
         match Combine.custom_fn_of op with
         | Some fn -> fn.Combine.builtin
         | None -> true)
       md.Md_hom.combine_ops
  && List.for_all
       (fun (i : Md_hom.input) -> Scalar.equal_ty i.inp_ty Scalar.Fp32)
       md.Md_hom.inputs
  && List.for_all
       (fun (o : Md_hom.output) -> Scalar.equal_ty o.out_ty Scalar.Fp32)
       md.Md_hom.outputs

let test_cc_matches_reference () =
  if not (Cc.available ()) then
    print_endline "test_specializer: SKIP compiled-C differential (no gcc)"
  else
    List.iter
      (fun (w : W.t) ->
        let md = W.to_md_hom w w.W.test_params in
        let env = w.W.gen w.W.test_params ~seed:29 in
        match Cc.execute md env with
        | Error e ->
          if cc_expressible md then
            Alcotest.failf "%s: compiled C refused an expressible computation: %s"
              w.W.wl_name e
        | Ok got ->
          check Alcotest.bool (w.W.wl_name ^ " expected expressible") true
            (cc_expressible md);
          (* the kernel accumulates in C float with OpenMP reassociation:
             looser tolerance than the double-accumulating specializer *)
          check Alcotest.bool (w.W.wl_name ^ " compiled C = reference") true
            (outputs_agree ~rel:1e-3 ~abs:1e-4 md got (Semantics.exec md env)))
      Catalog.all

let suite =
  let tc = Alcotest.test_case in
  ( "specializer",
    [ tc "specializer matches reference across catalogue" `Slow
        test_specializer_matches_reference;
      tc "digest cache hits, no warm recompiles" `Quick test_digest_cache_hits;
      tc "?specialize:false escape hatch" `Quick test_specialize_false_escape;
      tc "commuted multiplicands hit fastpath" `Quick
        test_commuted_operands_hit_fastpath;
      tc "fastpath error counted and degraded" `Quick
        test_fastpath_error_falls_back;
      tc "zero-extent workloads execute" `Quick test_zero_extent_runs;
      tc "generated C reduction identities" `Slow test_openmp_identity_init;
      tc "compiled C matches reference across catalogue" `Slow
        test_cc_matches_reference ] )
