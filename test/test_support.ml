(* Unit and property tests for Mdh_support: rng, stats, table, util. *)

open Mdh_support

let check = Alcotest.check

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  check Alcotest.bool "different streams" true (xs <> ys)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check Alcotest.bool "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    check Alcotest.bool "in range" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    check Alcotest.bool "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create 99 in
  let child = Rng.split parent in
  let xs = List.init 5 (fun _ -> Rng.next_int64 parent) in
  let ys = List.init 5 (fun _ -> Rng.next_int64 child) in
  check Alcotest.bool "children diverge" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_invalid () =
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_mean_simple () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_mean_empty () = check (Alcotest.float 1e-9) "mean []" 0.0 (Stats.mean [||])

let test_variance () =
  (* sample variance of 2,4,4,4,5,5,7,9 is 4.571428... *)
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check (Alcotest.float 1e-6) "variance" (32.0 /. 7.0) (Stats.variance xs)

let test_variance_singleton () =
  check (Alcotest.float 1e-9) "variance [x]" 0.0 (Stats.variance [| 5.0 |])

let test_median_odd () =
  check (Alcotest.float 1e-9) "median odd" 3.0 (Stats.median [| 5.0; 3.0; 1.0 |])

let test_median_even () =
  check (Alcotest.float 1e-9) "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_ci99_shrinks () =
  let tight = Array.make 100 1.0 in
  check (Alcotest.float 1e-9) "ci of constant" 0.0 (Stats.ci99_halfwidth tight);
  let loose = Array.init 100 (fun i -> if i mod 2 = 0 then 0.0 else 2.0) in
  check Alcotest.bool "ci positive for spread" true (Stats.ci99_halfwidth loose > 0.0)

let test_measure_until_ci_constant () =
  let calls = ref 0 in
  let m = Stats.measure_until_ci (fun () -> incr calls; 1.0) in
  check Alcotest.int "min samples" 5 m.samples;
  check (Alcotest.float 1e-9) "mean" 1.0 m.mean

let test_measure_until_ci_converges () =
  let r = Rng.create 11 in
  let m =
    Stats.measure_until_ci ~rel_ci:0.2 ~max_samples:2000 (fun () ->
        10.0 +. Rng.gaussian r)
  in
  check Alcotest.bool "converged within budget" true (m.samples < 2000);
  check Alcotest.bool "ci within bound" true (m.ci99 <= 0.2 *. m.mean)

let test_measure_until_ci_respects_max () =
  let r = Rng.create 21 in
  (* wildly noisy samples never converge: the cap must stop the loop *)
  let m =
    Stats.measure_until_ci ~rel_ci:0.0001 ~max_samples:37 (fun () ->
        Rng.float r 1000.0)
  in
  check Alcotest.int "capped" 37 m.samples

let test_table_cell_accessors () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "y"; "2" ];
  check (Alcotest.list (Alcotest.list Alcotest.string)) "rows skip separators"
    [ [ "x"; "1" ]; [ "y"; "2" ] ]
    (Table.rows t);
  check Alcotest.string "cell" "2" (Table.cell t ~row:1 ~col:"b");
  Alcotest.check_raises "bad col" (Invalid_argument "Table.cell: no column \"c\"")
    (fun () -> ignore (Table.cell t ~row:0 ~col:"c"))

let test_product () =
  check Alcotest.int "product" 24 (Util.product [| 2; 3; 4 |]);
  check Alcotest.int "empty product" 1 (Util.product [||])

let test_divisors () =
  check (Alcotest.list Alcotest.int) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Util.divisors 12);
  check (Alcotest.list Alcotest.int) "divisors 1" [ 1 ] (Util.divisors 1);
  check (Alcotest.list Alcotest.int) "divisors 16" [ 1; 2; 4; 8; 16 ] (Util.divisors 16)

let test_ceil_div () =
  check Alcotest.int "7/2" 4 (Util.ceil_div 7 2);
  check Alcotest.int "8/2" 4 (Util.ceil_div 8 2);
  check Alcotest.int "0/3" 0 (Util.ceil_div 0 3)

let test_pow2_up_to () =
  check (Alcotest.list Alcotest.int) "pow2 10" [ 1; 2; 4; 8 ] (Util.pow2_up_to 10);
  check (Alcotest.list Alcotest.int) "pow2 1" [ 1 ] (Util.pow2_up_to 1)

let test_float_equal () =
  check Alcotest.bool "close" true (Util.float_equal 1.0 (1.0 +. 1e-9));
  check Alcotest.bool "far" false (Util.float_equal 1.0 1.1)

let test_string_of_dims () =
  check Alcotest.string "dims" "4096x4096" (Util.string_of_dims [| 4096; 4096 |])

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "dot"; "1.5" ];
  Table.add_row t [ "matmul"; "12.25" ];
  let s = Table.render t in
  check Alcotest.bool "contains row" true
    (Test_util.contains s "dot" && Test_util.contains s "12.25")

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

(* qcheck properties *)

let prop_divisors_divide =
  QCheck2.Test.make ~name:"divisors all divide" ~count:200
    QCheck2.Gen.(int_range 1 5000)
    (fun n -> List.for_all (fun d -> n mod d = 0) (Mdh_support.Util.divisors n))

let prop_ceil_div =
  QCheck2.Test.make ~name:"ceil_div bounds" ~count:500
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 1000))
    (fun (a, b) ->
      let q = Mdh_support.Util.ceil_div a b in
      (q * b >= a) && ((q - 1) * b < a || q = 0))

(* --- rank correlation --- *)

let feq = Mdh_support.Util.float_equal ~rel:1e-9 ~abs:1e-9

let test_ranks_mid () =
  (* ties get the mid-rank: [10;20;20;30] -> [1; 2.5; 2.5; 4] *)
  let r = Stats.ranks [| 10.0; 20.0; 20.0; 30.0 |] in
  check Alcotest.bool "mid-ranks" true
    (feq r.(0) 1.0 && feq r.(1) 2.5 && feq r.(2) 2.5 && feq r.(3) 4.0)

let test_spearman_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = [| 10.0; 20.0; 40.0; 80.0; 160.0 |] in
  check Alcotest.bool "monotone -> +1" true (feq (Stats.spearman xs ys) 1.0);
  check Alcotest.bool "kendall +1" true (feq (Stats.kendall xs ys) 1.0)

(* the deliberately mis-ranked toy model: predicted cost ordering exactly
   inverts the measured one, so both coefficients must pin -1 — the
   accuracy tracker's worst case, not a degenerate input *)
let test_misranked_toy_model () =
  let predicted = [| 0.001; 0.002; 0.004; 0.008; 0.016 |] in
  let measured = [| 0.9; 0.5; 0.1; 0.05; 0.01 |] in
  check Alcotest.bool "spearman -1" true
    (feq (Stats.spearman predicted measured) (-1.0));
  check Alcotest.bool "kendall -1" true
    (feq (Stats.kendall predicted measured) (-1.0))

let test_correlation_degenerate () =
  (* a constant variable has no ranking to correlate against *)
  check Alcotest.bool "constant -> nan" true
    (Float.is_nan (Stats.spearman [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |]));
  check Alcotest.bool "short -> nan" true
    (Float.is_nan (Stats.kendall [| 1.0 |] [| 2.0 |]))

let test_kendall_ties () =
  (* tau-b with one tied pair on x: 5 pairs, 1 tie on x, all concordant
     otherwise: (5-0)/sqrt((6-1)*6) ~ 0.913 *)
  let t = Stats.kendall [| 1.0; 2.0; 2.0; 3.0 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  check Alcotest.bool "tau-b in (0.9, 0.93)" true (t > 0.9 && t < 0.93)

(* --- json reader --- *)

let test_json_roundtrip () =
  let j =
    Json_in.parse
      {|{"a": 1.5, "b": [true, null, "x\n"], "nested": {"k": -2e3}}|}
  in
  check Alcotest.(option (float 1e-9)) "number" (Some 1.5) (Json_in.get_float j "a");
  (match Json_in.get_list j "b" with
  | Some [ Json_in.Bool true; Json_in.Null; Json_in.Str "x\n" ] -> ()
  | _ -> Alcotest.fail "array content");
  match Json_in.member "nested" j with
  | Some n ->
    check Alcotest.(option (float 1e-9)) "nested number" (Some (-2000.0))
      (Json_in.get_float n "k")
  | None -> Alcotest.fail "nested object"

let test_json_rejects_garbage () =
  let bad s =
    match Json_in.parse s with
    | exception Json_in.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "trailing garbage" true (bad "{} x");
  check Alcotest.bool "unterminated string" true (bad {|{"a": "b|});
  check Alcotest.bool "bare word" true (bad "flase")

let test_json_accessor_mismatch () =
  let j = Json_in.parse {|{"s": "str"}|} in
  check Alcotest.bool "wrong type is None" true (Json_in.get_float j "s" = None);
  check Alcotest.bool "missing key is None" true (Json_in.get_float j "zz" = None)

(* --- memo --- *)

let test_memo_caches () =
  let memo = Memo.create () in
  let computed = ref 0 in
  let get () = Memo.find_or_add memo "k" (fun () -> incr computed; 42) in
  check Alcotest.int "first" 42 (get ());
  check Alcotest.int "second" 42 (get ());
  check Alcotest.int "computed once" 1 !computed;
  let stats = Memo.stats memo in
  check Alcotest.int "hits" 1 stats.Memo.n_hits;
  check Alcotest.int "misses" 1 stats.Memo.n_misses;
  check Alcotest.int "entries" 1 stats.Memo.n_entries

let test_memo_disabled () =
  let memo = Memo.create ~enabled:false () in
  let computed = ref 0 in
  for _ = 1 to 3 do
    ignore (Memo.find_or_add memo "k" (fun () -> incr computed; 0))
  done;
  check Alcotest.int "always computes" 3 !computed;
  check Alcotest.int "all misses" 3 (Memo.stats memo).Memo.n_misses;
  (* re-enabling starts caching *)
  Memo.set_enabled memo true;
  ignore (Memo.find_or_add memo "k" (fun () -> incr computed; 0));
  ignore (Memo.find_or_add memo "k" (fun () -> incr computed; 0));
  check Alcotest.int "cached once enabled" 4 !computed

let test_memo_clear () =
  let memo = Memo.create () in
  ignore (Memo.find_or_add memo "k" (fun () -> 1));
  Memo.clear memo;
  let stats = Memo.stats memo in
  check Alcotest.int "no entries" 0 stats.Memo.n_entries;
  check Alcotest.int "no misses" 0 stats.Memo.n_misses

let test_memo_key () =
  check Alcotest.string "deterministic" (Memo.key [ "a"; "b" ]) (Memo.key [ "a"; "b" ]);
  check Alcotest.bool "order sensitive" true (Memo.key [ "a"; "b" ] <> Memo.key [ "b"; "a" ]);
  (* the separator must prevent concatenation collisions *)
  check Alcotest.bool "no concat collision" true
    (Memo.key [ "ab"; "c" ] <> Memo.key [ "a"; "bc" ])

let suite =
  let tc = Alcotest.test_case in
  ( "support",
    [ tc "rng deterministic" `Quick test_rng_deterministic;
      tc "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      tc "rng int bounds" `Quick test_rng_int_bounds;
      tc "rng int_in bounds" `Quick test_rng_int_in;
      tc "rng float bounds" `Quick test_rng_float_bounds;
      tc "rng split independent" `Quick test_rng_split_independent;
      tc "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
      tc "rng invalid bound" `Quick test_rng_invalid;
      tc "stats mean" `Quick test_mean_simple;
      tc "stats mean empty" `Quick test_mean_empty;
      tc "stats variance" `Quick test_variance;
      tc "stats variance singleton" `Quick test_variance_singleton;
      tc "stats median odd" `Quick test_median_odd;
      tc "stats median even" `Quick test_median_even;
      tc "stats ci99" `Quick test_ci99_shrinks;
      tc "stats measure constant" `Quick test_measure_until_ci_constant;
      tc "stats measure converges" `Quick test_measure_until_ci_converges;
      tc "stats measure respects cap" `Quick test_measure_until_ci_respects_max;
      tc "stats ranks mid-rank ties" `Quick test_ranks_mid;
      tc "stats spearman perfect" `Quick test_spearman_perfect;
      tc "stats mis-ranked toy model" `Quick test_misranked_toy_model;
      tc "stats correlation degenerate" `Quick test_correlation_degenerate;
      tc "stats kendall tau-b ties" `Quick test_kendall_ties;
      tc "json_in roundtrip" `Quick test_json_roundtrip;
      tc "json_in rejects garbage" `Quick test_json_rejects_garbage;
      tc "json_in accessor mismatch" `Quick test_json_accessor_mismatch;
      tc "table cell accessors" `Quick test_table_cell_accessors;
      tc "util product" `Quick test_product;
      tc "util divisors" `Quick test_divisors;
      tc "util ceil_div" `Quick test_ceil_div;
      tc "util pow2_up_to" `Quick test_pow2_up_to;
      tc "util float_equal" `Quick test_float_equal;
      tc "util string_of_dims" `Quick test_string_of_dims;
      tc "table render" `Quick test_table_render;
      tc "table arity" `Quick test_table_arity;
      tc "memo caches" `Quick test_memo_caches;
      tc "memo disabled" `Quick test_memo_disabled;
      tc "memo clear" `Quick test_memo_clear;
      tc "memo key" `Quick test_memo_key;
      QCheck_alcotest.to_alcotest prop_divisors_divide;
      QCheck_alcotest.to_alcotest prop_ceil_div ] )
