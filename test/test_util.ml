(* Shared helpers for the test suites. *)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec loop i =
      if i + nn > hn then false
      else if String.sub haystack i nn = needle then true
      else loop (i + 1)
    in
    loop 0
  end

let scalar_value : Mdh_tensor.Scalar.value Alcotest.testable =
  Alcotest.testable Mdh_tensor.Scalar.pp_value Mdh_tensor.Scalar.equal

let scalar_approx : Mdh_tensor.Scalar.value Alcotest.testable =
  Alcotest.testable Mdh_tensor.Scalar.pp_value
    (Mdh_tensor.Scalar.approx_equal ~rel:1e-5 ~abs:1e-6)

let dense : Mdh_tensor.Dense.t Alcotest.testable =
  Alcotest.testable Mdh_tensor.Dense.pp Mdh_tensor.Dense.equal

let dense_approx : Mdh_tensor.Dense.t Alcotest.testable =
  Alcotest.testable Mdh_tensor.Dense.pp
    (Mdh_tensor.Dense.approx_equal ~rel:1e-4 ~abs:1e-5)

(* A minimal JSON reader for checking emitted JSON (Chrome traces, SARIF)
   without external dependencies. Only what the tests need. *)
module Json_reader = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'u' ->
            advance ();
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          | c -> raise (Bad (Printf.sprintf "bad escape %c" c)));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do advance () done;
      if !pos = start then raise (Bad "empty number");
      float_of_string (String.sub s start (!pos - start))
    in
    let parse_lit lit v =
      if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
      then begin
        pos := !pos + String.length lit;
        v
      end
      else raise (Bad ("bad literal at " ^ string_of_int !pos))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | c -> raise (Bad (Printf.sprintf "bad object sep %c" c))
          in
          Obj (members [])
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | c -> raise (Bad (Printf.sprintf "bad array sep %c" c))
          in
          Arr (elements [])
        end
      | '"' -> Str (parse_string ())
      | 't' -> parse_lit "true" (Bool true)
      | 'f' -> parse_lit "false" (Bool false)
      | 'n' -> parse_lit "null" Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end
