(* Shared helpers for the test suites. *)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec loop i =
      if i + nn > hn then false
      else if String.sub haystack i nn = needle then true
      else loop (i + 1)
    in
    loop 0
  end

let scalar_value : Mdh_tensor.Scalar.value Alcotest.testable =
  Alcotest.testable Mdh_tensor.Scalar.pp_value Mdh_tensor.Scalar.equal

let scalar_approx : Mdh_tensor.Scalar.value Alcotest.testable =
  Alcotest.testable Mdh_tensor.Scalar.pp_value
    (Mdh_tensor.Scalar.approx_equal ~rel:1e-5 ~abs:1e-6)

let dense : Mdh_tensor.Dense.t Alcotest.testable =
  Alcotest.testable Mdh_tensor.Dense.pp Mdh_tensor.Dense.equal

let dense_approx : Mdh_tensor.Dense.t Alcotest.testable =
  Alcotest.testable Mdh_tensor.Dense.pp
    (Mdh_tensor.Dense.approx_equal ~rel:1e-4 ~abs:1e-5)

